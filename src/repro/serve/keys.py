"""Canonical job specs and content-addressed cache keys.

The serve cache and the bench driver share one definition of "the same
problem": a **job spec** — the circuit, the split and every solver flag
that can influence the produced automaton or its stats — normalised
into a canonical dict and hashed with SHA-256.  Two submissions collide
on the cache exactly when their specs hash equal.

What is part of the key
-----------------------

* the circuit, as **canonical BLIF bytes**: the input text is parsed
  and re-emitted by :func:`repro.network.blif.write_blif`, so
  whitespace, cover-row order and comment differences between
  textually distinct but structurally identical netlists vanish;
* the split (``x_latches``, ``u_signals``) and the flow (``method``);
* every solver flag: ``schedule``, ``trim``, ``reorder``, ``gc``,
  ``shards``, ``frontier``, ``batch``, ``product_order``.

Flags like ``--reorder`` or ``--shards`` provably do not change the
solved language — but they are hashed anyway, for three reasons.
First, byte-reproducibility is the conservative contract: ``frontier``
and ``batch`` change subset discovery order and therefore state
*numbering*, so a cached automaton from a different setting would not
be byte-identical to a cold solve.  Second, the cached payload carries
the run's statistics (memo hit rates, GC/reorder counters, shard
transfer counts); attributing a ``--shards 4`` stats block to a
``--shards 1`` query would silently corrupt benchmark comparisons.
Third, the bench driver tags every BENCH_table1 row with its
``cache_key``, and cached-vs-cold latency comparisons are only
attributable when variant rows (which differ exactly in these flags)
get distinct keys.

What is *not* part of the key
-----------------------------

Resource budgets (``max_seconds``, ``max_nodes``) and serving knobs
(``checkpoint_every``, resume requests) — they bound *whether* a solve
completes, never what it produces.  The BDD ``backend`` is excluded for
the same reason, deliberately and in the *opposite* direction from
``reorder``/``shards``: backends are required to be byte-identical on
the wire (the conformance kit enforces canonical snapshots, and the
differential suite checks byte-identical KISS output per backend), so
hashing the backend would only split one result across two cache
entries.  :func:`job_spec` still *validates* the flag — a misspelled
backend must fail loudly, not alias onto the default — and then drops
it before hashing.
"""

from __future__ import annotations

import hashlib
import json
from collections.abc import Sequence

from repro.errors import ServeError

#: Version tag of the canonical spec layout (bump on field changes).
SPEC_FORMAT = "repro-serve-spec/2"

#: Solver-flag fields of a spec, with their defaults.  ``product_order``
#: is hashed for the same reason ``reorder``/``shards`` are: the
#: identity tests prove the produced KISS bytes are order-independent,
#: but the cached stats block (peak nodes, wall time, sift counters) is
#: not, and the bench driver's ``@interleave`` variant rows need
#: distinct keys to stay attributable.
FLAG_DEFAULTS = {
    "method": "partitioned",
    "schedule": True,
    "trim": True,
    "reorder": "off",
    "gc": "static",
    "shards": 1,
    "frontier": "dfs",
    "batch": 1,
    "product_order": "stacked",
}

#: Flags a spec accepts (and validates) but never hashes: they are
#: guaranteed not to change the produced bytes.  ``backend`` picks the
#: BDD kernel — a pure speed knob under the conformance contract.
EXCLUDED_FLAGS = ("backend",)


def canonical_blif(blif: "str | object") -> str:
    """Canonical BLIF text of a circuit (text or ``Network``).

    Parsing and re-emitting makes the bytes independent of the
    formatting of the submitted text; a :class:`~repro.network.netlist.Network`
    is emitted directly.
    """
    from repro.network.blif import parse_blif, write_blif

    if isinstance(blif, str):
        return write_blif(parse_blif(blif))
    return write_blif(blif)


def job_spec(
    blif: "str | object",
    x_latches: Sequence[str],
    *,
    u_signals: Sequence[str] | None = None,
    **flags,
) -> dict:
    """Build the canonical spec dict for one solve.

    ``blif`` may be BLIF text or a parsed ``Network``.  Unknown flag
    names raise :class:`~repro.errors.ServeError` (a misspelled flag
    silently falling back to its default would alias distinct problems
    onto one cache entry).  ``backend`` is accepted and validated but
    **excluded** from the spec: two submissions differing only in
    backend are the same problem and must collide on the cache.
    """
    flags = dict(flags)
    backend = flags.pop("backend", None)
    if backend is not None:
        from repro.bdd.backends import BACKEND_CHOICES

        if backend not in BACKEND_CHOICES:
            raise ServeError(
                f"unknown BDD backend {backend!r}; "
                f"choose from {BACKEND_CHOICES}"
            )
    unknown = set(flags) - set(FLAG_DEFAULTS)
    if unknown:
        raise ServeError(f"unknown solver flags in job spec: {sorted(unknown)}")
    spec = {
        "format": SPEC_FORMAT,
        "blif": canonical_blif(blif),
        "x_latches": sorted(x_latches),
        "u_signals": sorted(u_signals) if u_signals is not None else None,
    }
    for name, default in FLAG_DEFAULTS.items():
        spec[name] = flags.get(name, default)
    return spec


def cache_key(spec: dict) -> str:
    """SHA-256 hex digest of a canonical spec.

    The spec is serialised as minified JSON with sorted keys, so the
    digest is stable across Python versions and dict insertion orders.
    """
    encoded = json.dumps(
        spec, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )
    return hashlib.sha256(encoded.encode("ascii")).hexdigest()


def solve_cache_key(
    blif: "str | object",
    x_latches: Sequence[str],
    *,
    u_signals: Sequence[str] | None = None,
    **flags,
) -> str:
    """One-call spec + hash (what the bench driver tags its rows with)."""
    return cache_key(job_spec(blif, x_latches, u_signals=u_signals, **flags))
