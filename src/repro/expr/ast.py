"""Boolean expression AST.

A tiny structural representation of Boolean formulas used by the network
package (gate functions) and the expression parser.  Expressions are
immutable, hashable, evaluable against an environment, and convertible to
BDDs against any manager.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

from repro.bdd.manager import FALSE, TRUE, BddManager


class Expr:
    """Base class of Boolean expressions."""

    def evaluate(self, env: Mapping[str, bool | int]) -> bool:
        """Evaluate under a name -> value environment."""
        raise NotImplementedError

    def to_bdd(self, mgr: BddManager) -> int:
        """Build the BDD of this expression (variables matched by name).

        Variables must already be declared in ``mgr``; this keeps variable
        ordering an explicit, deliberate choice of the caller.
        """
        raise NotImplementedError

    def variables(self) -> frozenset[str]:
        """Names of the variables occurring in the expression."""
        raise NotImplementedError

    # Operator sugar so tests and examples can compose expressions.
    def __and__(self, other: "Expr") -> "Expr":
        return And((self, other))

    def __or__(self, other: "Expr") -> "Expr":
        return Or((self, other))

    def __xor__(self, other: "Expr") -> "Expr":
        return Xor((self, other))

    def __invert__(self) -> "Expr":
        return Not(self)


@dataclass(frozen=True)
class Const(Expr):
    """A Boolean constant."""

    value: bool

    def evaluate(self, env: Mapping[str, bool | int]) -> bool:
        return self.value

    def to_bdd(self, mgr: BddManager) -> int:
        return TRUE if self.value else FALSE

    def variables(self) -> frozenset[str]:
        return frozenset()

    def __str__(self) -> str:
        return "1" if self.value else "0"


@dataclass(frozen=True)
class Var(Expr):
    """A variable reference by name."""

    name: str

    def evaluate(self, env: Mapping[str, bool | int]) -> bool:
        return bool(env[self.name])

    def to_bdd(self, mgr: BddManager) -> int:
        return mgr.var_node(mgr.var_index(self.name))

    def variables(self) -> frozenset[str]:
        return frozenset({self.name})

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Not(Expr):
    """Negation."""

    arg: Expr

    def evaluate(self, env: Mapping[str, bool | int]) -> bool:
        return not self.arg.evaluate(env)

    def to_bdd(self, mgr: BddManager) -> int:
        return mgr.apply_not(self.arg.to_bdd(mgr))

    def variables(self) -> frozenset[str]:
        return self.arg.variables()

    def __str__(self) -> str:
        return f"!{_wrap(self.arg)}"


@dataclass(frozen=True)
class And(Expr):
    """N-ary conjunction."""

    args: tuple[Expr, ...]

    def evaluate(self, env: Mapping[str, bool | int]) -> bool:
        return all(a.evaluate(env) for a in self.args)

    def to_bdd(self, mgr: BddManager) -> int:
        result = TRUE
        for a in self.args:
            result = mgr.apply_and(result, a.to_bdd(mgr))
            if result == FALSE:
                break
        return result

    def variables(self) -> frozenset[str]:
        return frozenset().union(*(a.variables() for a in self.args))

    def __str__(self) -> str:
        return " & ".join(_wrap(a) for a in self.args) if self.args else "1"


@dataclass(frozen=True)
class Or(Expr):
    """N-ary disjunction."""

    args: tuple[Expr, ...]

    def evaluate(self, env: Mapping[str, bool | int]) -> bool:
        return any(a.evaluate(env) for a in self.args)

    def to_bdd(self, mgr: BddManager) -> int:
        result = FALSE
        for a in self.args:
            result = mgr.apply_or(result, a.to_bdd(mgr))
            if result == TRUE:
                break
        return result

    def variables(self) -> frozenset[str]:
        return frozenset().union(*(a.variables() for a in self.args))

    def __str__(self) -> str:
        return " | ".join(_wrap(a) for a in self.args) if self.args else "0"


@dataclass(frozen=True)
class Xor(Expr):
    """N-ary exclusive or (parity)."""

    args: tuple[Expr, ...]

    def evaluate(self, env: Mapping[str, bool | int]) -> bool:
        return sum(bool(a.evaluate(env)) for a in self.args) % 2 == 1

    def to_bdd(self, mgr: BddManager) -> int:
        result = FALSE
        for a in self.args:
            result = mgr.apply_xor(result, a.to_bdd(mgr))
        return result

    def variables(self) -> frozenset[str]:
        return frozenset().union(*(a.variables() for a in self.args))

    def __str__(self) -> str:
        return " ^ ".join(_wrap(a) for a in self.args) if self.args else "0"


def _wrap(e: Expr) -> str:
    """Parenthesise compound sub-expressions when stringifying."""
    if isinstance(e, (Var, Const, Not)):
        return str(e)
    return f"({e})"


def and_(*args: Expr) -> Expr:
    """N-ary AND convenience constructor."""
    return And(tuple(args))


def or_(*args: Expr) -> Expr:
    """N-ary OR convenience constructor."""
    return Or(tuple(args))


def xor_(*args: Expr) -> Expr:
    """N-ary XOR convenience constructor."""
    return Xor(tuple(args))


def var(name: str) -> Var:
    """Variable convenience constructor."""
    return Var(name)


def substitute(expr: Expr, mapping: Mapping[str, str]) -> Expr:
    """Rename the variables of ``expr`` according to ``mapping``.

    Names absent from ``mapping`` are kept.  Used by the latch-splitting
    transform to redirect signals through the u/v communication wires.
    """
    if isinstance(expr, Const):
        return expr
    if isinstance(expr, Var):
        new_name = mapping.get(expr.name)
        return expr if new_name is None else Var(new_name)
    if isinstance(expr, Not):
        return Not(substitute(expr.arg, mapping))
    if isinstance(expr, And):
        return And(tuple(substitute(a, mapping) for a in expr.args))
    if isinstance(expr, Or):
        return Or(tuple(substitute(a, mapping) for a in expr.args))
    if isinstance(expr, Xor):
        return Xor(tuple(substitute(a, mapping) for a in expr.args))
    raise TypeError(f"unknown expression node: {expr!r}")


TRUE_EXPR = Const(True)
FALSE_EXPR = Const(False)
