"""Image computation: the kernel of every operation in the paper.

Two implementations of ``∃ quantify . (constraint ∧ Π parts)``:

* :func:`image_monolithic` — conjoin everything, then quantify (the
  baseline; one fused ``and_exists`` against the pre-built monolithic
  relation when it is available);
* :func:`image_partitioned` — schedule the parts (see
  :mod:`repro.symb.schedule`) and fold them in with ``and_exists``,
  retiring quantified variables as early as possible.  The monolithic
  conjunction is never materialised.

Both are exact; they differ only in intermediate BDD sizes, which is
precisely the paper's claim (and the E5 ablation benchmark).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.bdd.manager import FALSE, TRUE, BddManager, QuantSet
from repro.obs.trace import span as obs_span
from repro.symb.schedule import schedule_parts


def image_monolithic(
    mgr: BddManager,
    relation: int,
    constraint: int,
    quantify: Iterable[int],
) -> int:
    """``∃ quantify . (constraint ∧ relation)`` with a monolithic relation."""
    return mgr.and_exists(constraint, relation, list(quantify))


def image_partitioned(
    mgr: BddManager,
    parts: Sequence[int],
    constraint: int,
    quantify: Iterable[int],
    *,
    schedule: bool = True,
    gc: bool = False,
) -> int:
    """``∃ quantify . (constraint ∧ Π parts)`` on the partitioned form.

    With ``schedule=False`` the parts are conjoined in the given order
    and all quantification happens at the end (the "no early
    quantification" strawman used by the E5 ablation).

    With ``gc=True`` the manager may collect garbage between fold steps
    (only when its growth trigger arms).  Callers must then hold their own
    live functions through ``mgr.ref``/``mgr.protect`` — the fold protects
    only its running ``result`` and the remaining parts.  When the
    manager runs a :class:`~repro.bdd.policy.ReorderPolicy`, an
    unprofitable collection may be followed by an in-place sift; the
    protected roots and all pinned functions survive with their edges
    intact (the plan's retire sets are variable *indices*, which
    reordering never renumbers).
    """
    qvars = list(quantify)
    if not parts:
        if constraint == FALSE:
            return FALSE
        return mgr.exists(constraint, qvars)
    if not schedule:
        result = constraint
        for part in parts:
            result = mgr.apply_and(result, part)
            if result == FALSE:
                return FALSE
        return mgr.exists(result, qvars)

    plan = schedule_parts(
        mgr,
        parts,
        qvars,
        constraint_support=mgr.support(constraint),
    )
    result = constraint
    quantified: set[int] = set()
    for i, (part, retire) in enumerate(plan):
        result = mgr.and_exists(result, part, retire)
        quantified.update(retire)
        if result == FALSE:
            return FALSE
        if gc and mgr.should_collect():
            mgr.collect_garbage([result, *(p for p, _ in plan[i + 1 :])])
    leftover = [v for v in qvars if v not in quantified]
    # result can only be FALSE here via the early return above, but guard
    # the quantification anyway: ∃ x . FALSE is FALSE.
    if leftover and result != FALSE:
        result = mgr.exists(result, leftover)
    return result


def plan_image(
    mgr: BddManager,
    parts: Sequence[int],
    quantify: Iterable[int],
    constraint_support: Iterable[int],
) -> tuple[list[tuple[int, QuantSet]], QuantSet]:
    """Precompute a reusable image plan for a fixed part list.

    The subset construction computes thousands of images against the
    *same* partitioned relation with only the constraint ψ changing; as
    long as every constraint's support stays within
    ``constraint_support``, the schedule can be computed once and reused
    via :func:`image_with_plan`.  Returns ``(plan, leftover_vars)``.

    Every retire set (and the leftover set) is interned as a
    :class:`~repro.bdd.manager.QuantSet`, so the thousands of
    ``and_exists`` fold steps the plan will drive skip the per-call
    sort/dedup/intern pass.  Quant sets hold variable *indices* and
    revalidate their level caches lazily, so a plan stays valid across
    GC-triggered in-place reordering.
    """
    with obs_span("plan_image", parts=len(parts)) as plan_span:
        qvars = list(quantify)
        plan = schedule_parts(
            mgr, parts, qvars, constraint_support=constraint_support
        )
        planned = set()
        for _, retire in plan:
            planned.update(retire)
        leftover = [v for v in qvars if v not in planned]
        interned = [(part, mgr.quant_set(retire)) for part, retire in plan]
        plan_span.set(steps=len(interned), leftover=len(leftover))
        return interned, mgr.quant_set(leftover)


def image_with_plan(
    mgr: BddManager,
    plan: Sequence[tuple[int, QuantSet | list[int]]],
    leftover: QuantSet | Sequence[int],
    constraint: int,
    *,
    gc: bool = False,
) -> int:
    """Run a precomputed image plan against one constraint.

    Each fold step is one fused ``and_exists`` — the conjunction with
    the next part quantifies its retired variables on the fly and
    short-circuits to FALSE the moment the product dies, so the
    monolithic conjunction is never materialised.  ``gc=True`` allows
    opportunistic garbage collection between fold steps (see
    :func:`image_partitioned` for the rooting contract).
    """
    result = constraint
    if result == FALSE:
        return FALSE
    for i, (part, retire) in enumerate(plan):
        result = mgr.and_exists(result, part, retire)
        if result == FALSE:
            return FALSE
        if gc and mgr.should_collect():
            mgr.collect_garbage([result, *(p for p, _ in plan[i + 1 :])])
    if leftover:
        result = mgr.exists(result, leftover)
    return result


def preimage_partitioned(
    mgr: BddManager,
    parts: Sequence[int],
    target_ns: int,
    quantify_ns: Iterable[int],
    *,
    schedule: bool = True,
) -> int:
    """Pre-image: states (cs) with a successor in ``target_ns`` (over ns).

    ``∃ ns,i . (Π parts ∧ target)`` — the dual of :func:`image_partitioned`
    with the roles of current/next state variables exchanged; provided for
    completeness of the engine (backward reachability).
    """
    return image_partitioned(
        mgr, parts, target_ns, quantify_ns, schedule=schedule
    )


def constrain_parts(
    mgr: BddManager, parts: Sequence[int], constraint: int
) -> list[int]:
    """Conjoin ``constraint`` into the smallest part (cheap restriction)."""
    if not parts:
        return [constraint] if constraint != TRUE else []
    best = min(range(len(parts)), key=lambda k: mgr.size(parts[k]))
    out = list(parts)
    out[best] = mgr.apply_and(out[best], constraint)
    return out
