#!/usr/bin/env python
"""Quickstart: compute the Complete Sequential Flexibility of a sub-circuit.

Builds a 4-bit counter, moves two of its latches into an "unknown"
component, solves the language equation F x X ⊆ S with the paper's
partitioned algorithm, and formally verifies the result.

Run:  python examples/quickstart.py
"""

import sys
from pathlib import Path

try:  # src layout: let `python examples/<name>.py` run without installing
    import repro  # noqa: F401
except ImportError:
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench import circuits
from repro.eqn import solve_latch_split, verify_solution


def main() -> None:
    # 1. A sequential circuit: 4-bit enabled counter (1 input, 1 output).
    net = circuits.counter(4)
    print(f"circuit: {net.name}  (i/o/latches = {net.stats()})")

    # 2. Declare two latches to be the "unknown" component X and solve
    #    F x X ⊆ S for the most general prefix-closed solution; the CSF
    #    is its largest input-progressive (implementable) part.
    result = solve_latch_split(net, x_latches=["b1", "b2"], method="partitioned")
    print(f"solved with the {result.method} flow in {result.seconds:.3f}s")
    print(f"CSF states: {result.csf_states}")
    print(
        f"subset construction: {result.stats.subsets} subset states, "
        f"{result.stats.edges} edges"
    )

    # 3. Verify the paper's checks: the original sub-circuit is contained
    #    in the flexibility, and composing F with the solution stays
    #    within the specification.
    report = verify_solution(result)
    print(f"verification: {report.summary()}")
    assert report.ok

    # 4. The flexibility is real: the CSF strictly contains the original
    #    implementation of those two latches.
    from repro.automata import contained_in
    from repro.eqn import particular_solution_automaton

    xp = particular_solution_automaton(result.problem)
    strictly_larger = not contained_in(result.csf, xp).holds
    print(f"CSF strictly larger than the original sub-circuit: {strictly_larger}")


if __name__ == "__main__":
    main()
