"""Behavioural tests for the extended benchmark circuit generators."""

from __future__ import annotations

import random

import pytest

from repro.bench import circuits
from repro.errors import NetworkError


class TestGrayCounter:
    def test_adjacent_states_differ_in_one_bit(self) -> None:
        net = circuits.gray_counter(3)
        state = net.initial_state()
        seen = [tuple(state.values())]
        for _ in range(8):
            _, state = net.step(state, {"en": 1})
            seen.append(tuple(state.values()))
        for a, b in zip(seen, seen[1:]):
            assert sum(x != y for x, y in zip(a, b)) == 1
        # Full period: 2^n distinct codes then wrap.
        assert len(set(seen[:-1])) == 8
        assert seen[0] == seen[-1]

    def test_hold_when_disabled(self) -> None:
        net = circuits.gray_counter(3)
        _, s1 = net.step(net.initial_state(), {"en": 1})
        _, s2 = net.step(s1, {"en": 0})
        assert s1 == s2

    def test_too_small_rejected(self) -> None:
        with pytest.raises(NetworkError):
            circuits.gray_counter(1)


class TestUpDownCounter:
    def test_up_then_down_returns_to_zero(self) -> None:
        net = circuits.updown_counter(3)
        state = net.initial_state()
        for _ in range(5):
            _, state = net.step(state, {"en": 1, "up": 1})
        for _ in range(5):
            _, state = net.step(state, {"en": 1, "up": 0})
        outs, _ = net.step(state, {"en": 0, "up": 0})
        assert outs["zero"] == 1

    def test_counts_match_arithmetic(self) -> None:
        net = circuits.updown_counter(3)
        state = net.initial_state()
        value = 0
        rng = random.Random(3)
        for _ in range(40):
            en, up = rng.randint(0, 1), rng.randint(0, 1)
            _, state = net.step(state, {"en": en, "up": up})
            if en:
                value = (value + (1 if up else -1)) % 8
            got = sum(state[f"b{k}"] << k for k in range(3))
            assert got == value

    def test_wraparound_down_from_zero(self) -> None:
        net = circuits.updown_counter(2)
        _, state = net.step(net.initial_state(), {"en": 1, "up": 0})
        assert (state["b0"], state["b1"]) == (1, 1)  # 0 - 1 = 3 mod 4


class TestFifoController:
    def test_push_pop_occupancy(self) -> None:
        net = circuits.fifo_controller(2)
        state = net.initial_state()
        outs, _ = net.step(state, {"push": 0, "pop": 0})
        assert outs == {"full": 0, "empty": 1}
        # Push to full (depth 4 with a 2-bit pointer).
        for _ in range(4):
            _, state = net.step(state, {"push": 1, "pop": 0})
        outs, _ = net.step(state, {"push": 0, "pop": 0})
        assert outs == {"full": 1, "empty": 0}
        # Extra pushes are ignored.
        _, state2 = net.step(state, {"push": 1, "pop": 0})
        assert state2 == state
        # Drain to empty.
        for _ in range(4):
            _, state = net.step(state, {"push": 0, "pop": 1})
        outs, _ = net.step(state, {"push": 0, "pop": 0})
        assert outs == {"full": 0, "empty": 1}

    def test_simultaneous_push_pop_keeps_occupancy(self) -> None:
        net = circuits.fifo_controller(2)
        _, state = net.step(net.initial_state(), {"push": 1, "pop": 0})
        _, state2 = net.step(state, {"push": 1, "pop": 1})
        # Occupancy unchanged (1), pointers both advanced.
        count = sum(state2[f"cnt{k}"] << k for k in range(3))
        assert count == 1
        assert state2["wp0"] != state["wp0"] or state2["wp1"] != state["wp1"]

    def test_never_full_and_empty(self) -> None:
        net = circuits.fifo_controller(2)
        state = net.initial_state()
        rng = random.Random(7)
        for _ in range(60):
            outs, state = net.step(
                state, {"push": rng.randint(0, 1), "pop": rng.randint(0, 1)}
            )
            assert not (outs["full"] and outs["empty"])

    def test_occupancy_bounded_by_depth(self) -> None:
        net = circuits.fifo_controller(2)
        state = net.initial_state()
        rng = random.Random(8)
        for _ in range(60):
            _, state = net.step(
                state, {"push": rng.randint(0, 1), "pop": rng.randint(0, 1)}
            )
            count = sum(state[f"cnt{k}"] << k for k in range(3))
            assert 0 <= count <= 4


class TestGeneratorsSplitCleanly:
    @pytest.mark.parametrize(
        "make,x",
        [
            (lambda: circuits.gray_counter(3), ["g1"]),
            (lambda: circuits.updown_counter(3), ["b1"]),
            (lambda: circuits.fifo_controller(1), ["cnt0", "wp0"]),
        ],
    )
    def test_solver_handles_new_circuits(self, make, x) -> None:
        from repro.automata import equivalent
        from repro.eqn import build_latch_split_problem, solve_equation

        prob = build_latch_split_problem(make(), x)
        rp = solve_equation(prob, method="partitioned")
        rm = solve_equation(prob, method="monolithic")
        assert rp.csf_states == rm.csf_states
        assert equivalent(rp.csf, rm.csf)

    @pytest.mark.parametrize(
        "make",
        [
            lambda: circuits.gray_counter(3),
            lambda: circuits.updown_counter(3),
            lambda: circuits.fifo_controller(2),
        ],
    )
    def test_blif_roundtrip(self, make) -> None:
        from repro.network import parse_blif, write_blif

        net = make()
        back = parse_blif(write_blif(net))
        rng = random.Random(4)
        stim = [
            {n: rng.randint(0, 1) for n in net.inputs} for _ in range(20)
        ]
        assert back.simulate(stim) == net.simulate(stim)


class TestTwinRings:
    def test_shape(self) -> None:
        net = circuits.twin_rings(16, 4)
        assert net.num_latches == 20
        assert list(net.inputs) == ["ena", "enb"]
        assert list(net.outputs) == ["qa", "qb"]

    def test_rings_are_independent(self) -> None:
        """Stepping one ring's enable must leave the other ring frozen."""
        net = circuits.twin_rings(4, 3)
        state = net.initial_state()
        for _ in range(5):
            _, state = net.step(state, {"ena": 1, "enb": 0})
        assert all(state[f"b{k}"] == 0 for k in range(3))
        assert any(state[f"a{k}"] == 1 for k in range(4))

    def test_each_ring_is_a_johnson_counter(self) -> None:
        """Ring a alone must walk the 2n-state Johnson cycle."""
        net = circuits.twin_rings(3, 2)
        state = net.initial_state()
        seen = []
        for _ in range(6):
            seen.append(tuple(state[f"a{k}"] for k in range(3)))
            _, state = net.step(state, {"ena": 1, "enb": 0})
        assert len(set(seen)) == 6  # 2n distinct states
        assert tuple(state[f"a{k}"] for k in range(3)) == seen[0]

    def test_too_small_rejected(self) -> None:
        with pytest.raises(NetworkError):
            circuits.twin_rings(1, 4)
        with pytest.raises(NetworkError):
            circuits.twin_rings(4, 1)
