"""ShardPool / worker protocol tests: lifecycle, commands, failure."""

from __future__ import annotations

import pytest

from repro.bdd import BddManager, dump_nodes, load_nodes
from repro.shard import ShardError, ShardPool

VARS = ["a", "b", "c", "d"]


@pytest.fixture()
def mgr():
    m = BddManager()
    m.add_vars(VARS)
    return m


def test_pool_spawns_and_closes(mgr) -> None:
    pool = ShardPool(2, VARS)
    try:
        stats = pool.stats()
        assert len(stats) == 2
        assert all(s["live_nodes"] == 1 for s in stats)
    finally:
        pool.close()
    pool.close()  # idempotent


def test_pool_context_manager(mgr) -> None:
    with ShardPool(1, VARS) as pool:
        assert pool.num_shards == 1


def test_pool_rejects_zero_shards() -> None:
    with pytest.raises(ShardError):
        ShardPool(0, VARS)


def test_load_conjoin_and_exists_roundtrip(mgr) -> None:
    a, b = mgr.var_index("a"), mgr.var_index("b")
    f = mgr.apply_or(mgr.var_node(a), mgr.var_node(b))
    g = mgr.apply_iff(mgr.var_node(a), mgr.var_node(b))
    with ShardPool(1, VARS) as pool:
        hf, hg, hout = pool.new_handle(), pool.new_handle(), pool.new_handle()
        pool.call(0, ("load", hf, dump_nodes(mgr, [f])))
        pool.call(0, ("load", hg, dump_nodes(mgr, [g])))
        pool.call(0, ("conjoin", hout, [hf, hg]))
        hq = pool.new_handle()
        pool.call(0, ("and_exists", hq, hf, hg, ["a"]))
        assert pool.stats()[0]["handles"] == 4
        # Pull both worker-side results back; edges must coincide with
        # the in-process kernel's (same order, canonical BDDs).
        (got_and,) = load_nodes(mgr, pool.call(0, ("dump", hout)))
        (got_q,) = load_nodes(mgr, pool.call(0, ("dump", hq)))
        assert got_and == mgr.apply_and(f, g)
        assert got_q == mgr.and_exists(f, g, [a])


def test_image_command_runs_plan(mgr) -> None:
    a, b, c = (mgr.var_index(n) for n in "abc")
    # Relation: b' ≡ a with b' played by c; quantify a.
    part = mgr.apply_iff(mgr.var_node(c), mgr.var_node(a))
    psi = mgr.var_node(a)
    with ShardPool(1, VARS) as pool:
        h = pool.new_handle()
        pool.call(0, ("load", h, dump_nodes(mgr, [part])))
        plan_id = pool.new_handle()
        pool.call(0, ("plan", plan_id, [h], ["a"], ["a", "b"]))
        snapshot = pool.call(0, ("image", plan_id, dump_nodes(mgr, [psi])))
        (img,) = load_nodes(mgr, snapshot)
        assert img == mgr.and_exists(psi, part, [a])


def test_worker_error_propagates_and_worker_survives(mgr) -> None:
    with ShardPool(1, VARS) as pool:
        with pytest.raises(ShardError, match="shard 0 failed"):
            pool.call(0, ("load", 1, {"format": "bogus"}))
        with pytest.raises(ShardError, match="unknown shard command"):
            pool.call(0, ("frobnicate",))
        # The worker is still alive and serving.
        assert pool.stats()[0]["live_nodes"] == 1


def test_submit_collect_pipelining(mgr) -> None:
    f = mgr.var_node(mgr.var_index("a"))
    with ShardPool(2, VARS) as pool:
        handles = []
        for shard in range(2):
            h = pool.new_handle()
            pool.submit(shard, ("load", h, dump_nodes(mgr, [f])))
            handles.append(h)
        for shard in range(2):
            pool.collect(shard)
        assert [s["handles"] for s in pool.stats()] == [1, 1]


def test_collect_without_pending_raises(mgr) -> None:
    with ShardPool(1, VARS) as pool:
        with pytest.raises(ShardError, match="no pending reply"):
            pool.collect(0)


def test_free_releases_handles(mgr) -> None:
    f = mgr.var_node(mgr.var_index("a"))
    with ShardPool(1, VARS) as pool:
        h = pool.new_handle()
        pool.call(0, ("load", h, dump_nodes(mgr, [f])))
        pool.call(0, ("free", [h]))
        assert pool.stats()[0]["handles"] == 0
        pool.call(0, ("gc",))
        assert pool.stats()[0]["live_nodes"] >= 1


def test_closed_pool_rejects_commands(mgr) -> None:
    pool = ShardPool(1, VARS)
    pool.close()
    with pytest.raises(ShardError, match="closed"):
        pool.submit(0, ("stats",))


def test_worker_own_policies() -> None:
    """Workers honour their own GC/reorder policy configuration."""
    with ShardPool(1, VARS, gc="adaptive", reorder="auto") as pool:
        stats = pool.stats()[0]
        assert stats["gc_runs"] == 0
        assert pool.call(0, ("gc",)) == 0  # nothing to reclaim yet


class TestOrderProfiles:
    """Per-shard order autonomy: sift_profile, stats, reset reuse."""

    def test_sift_profiles_record_per_shard_orders(self, mgr) -> None:
        f = mgr.apply_iff(
            mgr.var_node(mgr.var_index("a")), mgr.var_node(mgr.var_index("d"))
        )
        with ShardPool(2, VARS) as pool:
            h = pool.new_handle()
            pool.call(0, ("load", h, dump_nodes(mgr, [f])))
            replies = pool.sift_profiles()
            assert len(replies) == 2
            for shard, reply in enumerate(replies):
                assert sorted(reply["order"]) == sorted(VARS)
                assert pool.profiles[shard] == reply["order"]
                assert reply["swaps"] >= 0

    def test_stats_report_order_profile(self, mgr) -> None:
        with ShardPool(1, VARS) as pool:
            assert pool.stats()[0]["order_profile"] == VARS

    def test_reset_reuses_matching_profiles(self, mgr) -> None:
        with ShardPool(1, VARS) as pool:
            pool.profiles[0] = ["d", "c", "b", "a"]
            pool.reset(VARS, reuse_profiles=True)
            assert pool.stats()[0]["order_profile"] == ["d", "c", "b", "a"]
            # A plain reset restores the coordinator's order.
            pool.reset(VARS)
            assert pool.stats()[0]["order_profile"] == VARS

    def test_reset_drops_mismatched_profiles(self, mgr) -> None:
        with ShardPool(1, VARS) as pool:
            pool.profiles[0] = ["z", "c", "b", "a"]  # not a permutation
            pool.reset(VARS, reuse_profiles=True)
            assert pool.stats()[0]["order_profile"] == VARS
            assert 0 not in pool.profiles

    def test_resident_functions_survive_profile_sift(self, mgr) -> None:
        a, d = mgr.var_index("a"), mgr.var_index("d")
        f = mgr.apply_xor(mgr.var_node(a), mgr.var_node(d))
        with ShardPool(1, VARS) as pool:
            h = pool.new_handle()
            pool.call(0, ("retain", h, dump_nodes(mgr, [f])))
            pool.sift_profiles()
            (back,) = load_nodes(mgr, pool.call(0, ("dump", h)))
            assert back == f
