"""Tests for split_by_vars — the subset-successor enumeration primitive."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings

from repro.bdd import BddManager
from repro.bdd.cube import split_by_vars
from repro.bdd.manager import FALSE, TRUE
from repro.errors import BddError
from tests.strategies import expressions

SPLIT_VARS = ("u0", "u1")
LEAF_VARS = ("n0", "n1", "n2")
ALL_VARS = SPLIT_VARS + LEAF_VARS


def build(expr):
    mgr = BddManager()
    mgr.add_vars(ALL_VARS)  # split vars first => above leaf vars
    return mgr, expr.to_bdd(mgr)


@given(expressions(ALL_VARS, max_leaves=10))
@settings(max_examples=75, deadline=None)
def test_split_reconstructs_the_function(expr) -> None:
    mgr, node = build(expr)
    split_ids = [mgr.var_index(v) for v in SPLIT_VARS]
    pieces = split_by_vars(mgr, node, split_ids)
    rebuilt = FALSE
    for leaf, cond in pieces.items():
        assert leaf != FALSE
        rebuilt = mgr.apply_or(rebuilt, mgr.apply_and(cond, leaf))
    assert rebuilt == node


@given(expressions(ALL_VARS, max_leaves=10))
@settings(max_examples=75, deadline=None)
def test_split_conditions_partition_and_leaves_are_distinct(expr) -> None:
    mgr, node = build(expr)
    split_ids = [mgr.var_index(v) for v in SPLIT_VARS]
    pieces = list(split_by_vars(mgr, node, split_ids).items())
    # Leaves are distinct cofactors.
    leaves = [leaf for leaf, _ in pieces]
    assert len(leaves) == len(set(leaves))
    # Conditions are pairwise disjoint and depend only on split vars.
    split_set = set(split_ids)
    for i, (_, ci) in enumerate(pieces):
        assert mgr.support(ci) <= split_set
        for _, cj in pieces[i + 1 :]:
            assert mgr.apply_and(ci, cj) == FALSE


@given(expressions(ALL_VARS, max_leaves=10))
@settings(max_examples=50, deadline=None)
def test_split_matches_explicit_cofactors(expr) -> None:
    mgr, node = build(expr)
    split_ids = [mgr.var_index(v) for v in SPLIT_VARS]
    pieces = split_by_vars(mgr, node, split_ids)
    for bits in itertools.product((0, 1), repeat=len(split_ids)):
        cofactor = mgr.cofactor_cube(node, dict(zip(split_ids, bits)))
        if cofactor == FALSE:
            # No piece may cover this assignment.
            for leaf, cond in pieces.items():
                assert not mgr.eval_vars(cond, dict(zip(split_ids, bits)))
            continue
        covering = [
            leaf
            for leaf, cond in pieces.items()
            if mgr.eval_vars(cond, dict(zip(split_ids, bits)))
        ]
        assert covering == [cofactor]


def test_split_of_constant_true() -> None:
    mgr = BddManager()
    u = mgr.add_var("u")
    pieces = split_by_vars(mgr, TRUE, [u])
    assert pieces == {TRUE: TRUE}


def test_split_of_false_is_empty() -> None:
    mgr = BddManager()
    u = mgr.add_var("u")
    assert split_by_vars(mgr, FALSE, [u]) == {}


def test_split_rejects_vars_below_support() -> None:
    mgr = BddManager()
    n = mgr.add_var("n")  # above the split var: contract violation
    u = mgr.add_var("u")
    f = mgr.apply_and(mgr.var_node(n), mgr.var_node(u))
    with pytest.raises(BddError):
        split_by_vars(mgr, f, [u])
