"""The benchmark regression gate: median-normalised slowdown checks."""

from __future__ import annotations

import importlib.util
import json
import pathlib

REPO = pathlib.Path(__file__).resolve().parent.parent

_spec = importlib.util.spec_from_file_location(
    "bench_run_all", REPO / "benchmarks" / "run_all.py"
)
run_all = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(run_all)

BASELINE = REPO / "benchmarks" / "baselines" / "BENCH_kernel_smoke.json"


def _baseline_results():
    return json.loads(BASELINE.read_text())["results"]


def _write_baseline(tmp_path, results):
    p = tmp_path / "base.json"
    p.write_text(json.dumps({"results": results}))
    return p


def test_smoke_baseline_is_committed_and_wellformed() -> None:
    results = _baseline_results()
    names = {r["name"] for r in results}
    assert {"misordered_product", "misordered_product_reorder"} <= names
    assert all({"name", "size", "wall_s", "peak_live_nodes"} <= r.keys() for r in results)


def test_identical_run_passes(tmp_path) -> None:
    results = _baseline_results()
    base = _write_baseline(tmp_path, results)
    assert run_all.check_regression(results, base, 1.5) == []


def test_uniformly_slower_machine_passes(tmp_path) -> None:
    """A 3x-slower CI runner scales every workload alike: no failures."""
    results = _baseline_results()
    base = _write_baseline(tmp_path, results)
    slow = [dict(r, wall_s=r["wall_s"] * 3) for r in results]
    assert run_all.check_regression(slow, base, 1.5) == []


def test_single_workload_regression_fails(tmp_path) -> None:
    results = _baseline_results()
    base = _write_baseline(tmp_path, results)
    mixed = [
        dict(r, wall_s=r["wall_s"] * (4 if r["name"] == "gc_reachability" else 1))
        for r in results
    ]
    failures = run_all.check_regression(mixed, base, 2.5)
    assert len(failures) == 1
    assert failures[0].startswith("gc_reachability:")


def test_sub_millisecond_noise_ignored(tmp_path) -> None:
    results = _baseline_results()
    base = _write_baseline(tmp_path, results)
    noisy = [
        dict(r, wall_s=r["wall_s"] * (10 if r["wall_s"] < 0.001 else 1))
        for r in results
    ]
    assert run_all.check_regression(noisy, base, 2.5) == []


def test_size_mismatch_skipped(tmp_path) -> None:
    """Workloads whose size changed are not comparable."""
    results = _baseline_results()
    base = _write_baseline(tmp_path, results)
    resized = [dict(r, size=r["size"] + 1, wall_s=r["wall_s"] * 100) for r in results]
    assert run_all.check_regression(resized, base, 1.5) == []


def test_markdown_diff_lists_every_workload(tmp_path) -> None:
    """The diff table shows the whole perf picture, not just failures."""
    results = _baseline_results()
    base = _write_baseline(tmp_path, results)
    md = run_all.format_markdown_diff(results, base, 2.5)
    for r in results:
        assert f"| {r['name']} |" in md
    assert "| workload |" in md
    assert "🔴" not in md  # identical run: no regressions flagged


def test_markdown_diff_flags_regressions_and_new_workloads(tmp_path) -> None:
    results = _baseline_results()
    base = _write_baseline(tmp_path, results)
    mixed = [
        dict(r, wall_s=r["wall_s"] * (4 if r["name"] == "gc_reachability" else 1))
        for r in results
    ]
    mixed.append(dict(results[0], name="brand_new_workload"))
    md = run_all.format_markdown_diff(mixed, base, 2.5)
    gc_line = next(line for line in md.splitlines() if "| gc_reachability |" in line)
    assert "🔴" in gc_line
    new_line = next(line for line in md.splitlines() if "brand_new_workload" in line)
    assert "🆕" in new_line


def test_markdown_diff_marks_sub_ms_noise(tmp_path) -> None:
    results = _baseline_results()
    base = _write_baseline(tmp_path, results)
    sub_ms = [r["name"] for r in results if r["wall_s"] < 0.001]
    md = run_all.format_markdown_diff(results, base, 2.5)
    for name in sub_ms:
        line = next(line for line in md.splitlines() if f"| {name} |" in line)
        assert "sub-ms" in line


def test_driver_writes_diff_artifact(tmp_path) -> None:
    """--baseline produces BENCH_diff.md next to the JSON artifacts."""
    results = _baseline_results()
    base = _write_baseline(tmp_path, results)
    rows = run_all.compare_to_baseline(results, {"results": results})
    assert all(row["status"] in {"compared", "sub-ms"} for row in rows)
    md = run_all.format_markdown_diff(results, base, 2.5)
    out = tmp_path / "BENCH_diff.md"
    out.write_text(md)
    assert out.read_text().startswith("## Kernel benchmark diff")
