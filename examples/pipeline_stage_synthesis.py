#!/usr/bin/env python
"""Unknown-component synthesis: derive a missing pipeline stage.

A classic "unknown component" instance of the language equation, built
with an explicit topology rather than an automatic split:

* specification ``S``: the external behaviour "output equals input
  delayed by two cycles" (a depth-2 shift register);
* fixed component ``F``: the *second* delay stage is already placed; it
  forwards the primary input to the unknown component on ``u`` and
  registers whatever the unknown returns on ``v``;
* unknown ``X``: everything the language equation allows in the gap.

The CSF must (and does) contain the obvious solution — a single delay
register — and reveals exactly how much implementation freedom exists
around it.

Run:  python examples/pipeline_stage_synthesis.py
"""

import sys
from pathlib import Path

try:  # src layout: let `python examples/<name>.py` run without installing
    import repro  # noqa: F401
except ImportError:
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench import circuits
from repro.network import latch_split
from repro.automata import accepts, contained_in
from repro.eqn import (
    build_problem,
    particular_solution_automaton,
    solve_equation,
    verify_solution,
)


def main() -> None:
    # S: two-cycle delay.  Stage s1 stays in F; stage s0 is the unknown.
    spec = circuits.shift_register(2)
    split = latch_split(spec, ["s0"], u_signals=["d"])
    print("specification: q(t) = d(t-2)   (depth-2 shift register)")
    print(f"fixed part keeps latch s1; unknown must fill the first stage")
    print(f"u wires: {split.u_names}   v wires: {split.v_names}")

    problem = build_problem(split)
    result = solve_equation(problem, method="partitioned")
    print(f"\nCSF: {result.csf_states} states ({result.seconds:.3f}s)")
    report = verify_solution(result)
    print(f"verification: {report.summary()}")
    assert report.ok

    # The obvious implementation (one delay register) is inside the CSF.
    xp = particular_solution_automaton(problem)
    assert contained_in(xp, result.csf).holds
    print("the 1-cycle delay register is contained in the CSF  ✓")

    # Spot-check the flexibility semantics on concrete words: the unknown
    # sees u_d (the input) and must emit v_s0 (what stage two registers).
    csf = result.csf
    delay_word = [
        {"u_d": 1, "v_s0": 0},  # v lags u by one cycle (register init 0)
        {"u_d": 0, "v_s0": 1},
        {"u_d": 1, "v_s0": 0},
    ]
    assert accepts(csf, delay_word)
    print("the delayed-by-one trace is accepted by the CSF  ✓")


if __name__ == "__main__":
    main()
