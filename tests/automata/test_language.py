"""Tests for language queries: membership, emptiness, containment."""

from __future__ import annotations

import pytest

from repro.bdd.manager import TRUE
from repro.errors import AutomatonError
from repro.automata import (
    Automaton,
    accepts,
    contained_in,
    empty_automaton,
    enumerate_language,
    equivalent,
    is_empty,
    sample_words,
)
from tests.automata.conftest import ALPHABET, random_automaton

WORD_LEN = 3


class TestAccepts:
    def test_empty_word(self, mgr) -> None:
        aut = Automaton(mgr, ALPHABET)
        aut.add_state(accepting=True)
        assert accepts(aut, [])
        aut2 = Automaton(mgr, ALPHABET)
        aut2.add_state(accepting=False)
        assert not accepts(aut2, [])

    def test_nondeterministic_acceptance(self, mgr) -> None:
        # Two branches on the same letter; only one reaches acceptance.
        aut = Automaton(mgr, ALPHABET)
        q0 = aut.add_state(accepting=False)
        q1 = aut.add_state(accepting=False)
        q2 = aut.add_state(accepting=True)
        aut.add_letter_edge(q0, q1, {"x": 1})
        aut.add_letter_edge(q0, q2, {"x": 1})
        assert accepts(aut, [{"x": 1, "y": 0}])

    def test_partial_letter_rejected(self, mgr) -> None:
        aut = Automaton(mgr, ALPHABET)
        aut.add_state()
        with pytest.raises(AutomatonError):
            accepts(aut, [{"x": 1}])

    def test_run_dies_on_undefined_letter(self, mgr) -> None:
        aut = Automaton(mgr, ALPHABET)
        q0 = aut.add_state(accepting=True)
        aut.add_letter_edge(q0, q0, {"x": 1})
        assert not accepts(aut, [{"x": 0, "y": 0}])


class TestEmptiness:
    def test_no_states(self, mgr) -> None:
        aut = Automaton(mgr, ALPHABET)
        assert is_empty(aut)

    def test_empty_automaton_helper(self, mgr) -> None:
        assert is_empty(empty_automaton(mgr, ALPHABET))

    def test_unreachable_accepting_state(self, mgr) -> None:
        aut = Automaton(mgr, ALPHABET)
        aut.add_state(accepting=False)
        aut.add_state(accepting=True)  # unreachable
        assert is_empty(aut)

    def test_reachable_accepting_state(self, mgr) -> None:
        aut = Automaton(mgr, ALPHABET)
        q0 = aut.add_state(accepting=False)
        q1 = aut.add_state(accepting=True)
        aut.add_edge(q0, q1, TRUE)
        assert not is_empty(aut)


class TestContainment:
    @pytest.mark.parametrize("seed", range(10))
    def test_containment_matches_brute_force(self, seed) -> None:
        from repro.bdd.reorder import transfer
        from repro.automata.automaton import Automaton as A

        a = random_automaton(seed, n_states=3)
        b_raw = random_automaton(seed + 31, n_states=3)
        b = A(a.manager, a.variables)
        for sid in range(b_raw.num_states):
            b.add_state(b_raw.state_names[sid], accepting=sid in b_raw.accepting)
        for src, bucket in enumerate(b_raw.edges):
            for dst, label in bucket.items():
                b.add_edge(src, dst, transfer(label, b_raw.manager, a.manager))
        result = contained_in(a, b)
        la = enumerate_language(a, WORD_LEN)
        lb = enumerate_language(b, WORD_LEN)
        if result.holds:
            assert la <= lb
        else:
            assert result.counterexample is not None
            # The counterexample is accepted by a and rejected by b.
            assert accepts(a, result.counterexample)
            assert not accepts(b, result.counterexample)

    def test_self_containment(self) -> None:
        aut = random_automaton(5)
        assert contained_in(aut, aut).holds

    def test_equivalence_of_isomorphic_automata(self, mgr) -> None:
        a = Automaton(mgr, ALPHABET)
        qa = a.add_state()
        a.add_letter_edge(qa, qa, {"x": 1})
        b = Automaton(mgr, ALPHABET)
        qb = b.add_state()
        b.add_letter_edge(qb, qb, {"x": 1})
        assert equivalent(a, b)

    def test_strict_containment_detected(self, mgr) -> None:
        # a: only x=1 letters; b: everything.
        a = Automaton(mgr, ALPHABET)
        qa = a.add_state()
        a.add_letter_edge(qa, qa, {"x": 1})
        b = Automaton(mgr, ALPHABET)
        qb = b.add_state()
        b.add_edge(qb, qb, TRUE)
        assert contained_in(a, b).holds
        result = contained_in(b, a)
        assert not result.holds
        assert result.counterexample is not None
        assert result.counterexample[-1]["x"] == 0

    def test_alphabet_mismatch_rejected(self, mgr) -> None:
        a = Automaton(mgr, ("x",))
        a.add_state()
        b = Automaton(mgr, ALPHABET)
        b.add_state()
        with pytest.raises(AutomatonError):
            contained_in(a, b)


class TestSampling:
    def test_sample_words_shape_and_determinism(self) -> None:
        aut = random_automaton(3)
        words1 = list(sample_words(aut, 10, 4, seed=7))
        words2 = list(sample_words(aut, 10, 4, seed=7))
        assert words1 == words2
        assert len(words1) == 10
        for word in words1:
            assert all(set(letter) == set(aut.variables) for letter in word)
