"""Structured logging on the stdlib :mod:`logging` module.

The runtime previously had *no* logging: a shard worker that failed a
command packed the traceback into its reply and said nothing locally,
and executor errors surfaced only as job events.  This module gives
every layer one logger family (``repro.*``) with structured fields::

    from repro.obs.log import get_logger

    log = get_logger("repro.shard.worker")
    log.error("command failed", op="expand_batch", pid=1234)

:func:`configure` (wired to the ``--log-level`` CLI flag and ``repro
serve --verbose``) installs a handler on the ``repro`` root with either
a human-readable line format or JSON lines (``json_lines=True``) —
one JSON object per line with wall *and* monotonic timestamps, so log
records can be correlated with trace spans and job events.

Unconfigured, the loggers inherit the stdlib default (warnings and
errors to stderr), so library users see failures without any setup.
"""

from __future__ import annotations

import json
import logging
import time

__all__ = ["configure", "get_logger", "StructuredLogger", "JsonLinesFormatter"]

#: Name of the family root every repro logger hangs below.
ROOT = "repro"

LEVELS = ("debug", "info", "warning", "error", "critical")


class JsonLinesFormatter(logging.Formatter):
    """One JSON object per record: timestamps, level, message, fields."""

    def format(self, record: logging.LogRecord) -> str:
        entry = {
            "ts": record.created,
            "mono": time.perf_counter(),
            "level": record.levelname.lower(),
            "logger": record.name,
            "msg": record.getMessage(),
        }
        fields = getattr(record, "fields", None)
        if fields:
            entry.update(fields)
        if record.exc_info and record.exc_info[0] is not None:
            entry["exc"] = self.formatException(record.exc_info)
        return json.dumps(entry, default=str)


class _TextFormatter(logging.Formatter):
    """Human-readable lines with ``key=value`` structured fields."""

    def format(self, record: logging.LogRecord) -> str:
        base = super().format(record)
        fields = getattr(record, "fields", None)
        if fields:
            rendered = " ".join(f"{k}={v!r}" for k, v in fields.items())
            base = f"{base} [{rendered}]"
        return base


class StructuredLogger:
    """Thin wrapper adding ``**fields`` to the stdlib logger methods."""

    def __init__(self, logger: logging.Logger) -> None:
        self._logger = logger

    @property
    def name(self) -> str:
        return self._logger.name

    def isEnabledFor(self, level: int) -> bool:
        return self._logger.isEnabledFor(level)

    def _log(self, level: int, msg: str, fields: dict, exc_info=None) -> None:
        if self._logger.isEnabledFor(level):
            self._logger.log(
                level, msg, extra={"fields": fields}, exc_info=exc_info
            )

    def debug(self, msg: str, **fields) -> None:
        self._log(logging.DEBUG, msg, fields)

    def info(self, msg: str, **fields) -> None:
        self._log(logging.INFO, msg, fields)

    def warning(self, msg: str, **fields) -> None:
        self._log(logging.WARNING, msg, fields)

    def error(self, msg: str, **fields) -> None:
        self._log(logging.ERROR, msg, fields)

    def exception(self, msg: str, **fields) -> None:
        self._log(logging.ERROR, msg, fields, exc_info=True)


def get_logger(name: str = ROOT) -> StructuredLogger:
    """A structured logger below the ``repro`` family root."""
    if name != ROOT and not name.startswith(ROOT + "."):
        name = f"{ROOT}.{name}"
    return StructuredLogger(logging.getLogger(name))


def configure(
    level: str = "warning",
    *,
    json_lines: bool = False,
    stream=None,
) -> logging.Handler:
    """Install one handler on the ``repro`` root (replacing previous).

    Parameters
    ----------
    level:
        Threshold name (``"debug"`` ... ``"critical"``), as accepted by
        the ``--log-level`` CLI flag.
    json_lines:
        Emit :class:`JsonLinesFormatter` JSON objects instead of text.
    stream:
        Target stream (default ``sys.stderr``).
    """
    if level.lower() not in LEVELS:
        raise ValueError(
            f"unknown log level {level!r} (choose from {', '.join(LEVELS)})"
        )
    root = logging.getLogger(ROOT)
    for handler in list(root.handlers):
        root.removeHandler(handler)
    handler = logging.StreamHandler(stream)
    if json_lines:
        handler.setFormatter(JsonLinesFormatter())
    else:
        handler.setFormatter(
            _TextFormatter("%(asctime)s %(levelname)s %(name)s: %(message)s")
        )
    root.addHandler(handler)
    root.setLevel(getattr(logging, level.upper()))
    root.propagate = False
    return handler
