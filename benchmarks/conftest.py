"""Shared helpers for the benchmark harness."""

from __future__ import annotations

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--table1-full",
        action="store_true",
        default=False,
        help="run the full Table 1 suite including the slow CNC rows",
    )


@pytest.fixture(scope="session")
def table1_full(request) -> bool:
    return request.config.getoption("--table1-full")
