"""Shared ROBDD engine (the paper's CUDD substrate, reimplemented).

Public surface:

* :class:`BddManager` — shared nodes with complement edges, a unified
  operator-tagged computed table, reference-counted garbage collection
  (``ref``/``deref``/``protect``/``collect_garbage``), Boolean
  connectives, quantification and the fused relational product
  ``and_exists`` that powers partitioned image computation.
* :class:`Function` — operator-overloaded wrapper for user code.
* :mod:`repro.bdd.cube` — counting / enumeration / picking of cubes.
* :mod:`repro.bdd.reorder` — garbage collection and rebuild-based
  variable reordering.
* :mod:`repro.bdd.io` — dot export and JSON (de)serialisation.
"""

from repro.bdd.cube import (
    iter_cubes,
    iter_minterms,
    pick_cube,
    pick_minterm,
    sat_count,
)
from repro.bdd.function import Function
from repro.bdd.io import dump_function, load_function, to_dot
from repro.bdd.manager import FALSE, TRUE, BddManager
from repro.bdd.reorder import compact, greedy_sift_order, reorder, transfer

__all__ = [
    "FALSE",
    "TRUE",
    "BddManager",
    "Function",
    "compact",
    "dump_function",
    "greedy_sift_order",
    "iter_cubes",
    "iter_minterms",
    "load_function",
    "pick_cube",
    "pick_minterm",
    "reorder",
    "sat_count",
    "to_dot",
    "transfer",
]
