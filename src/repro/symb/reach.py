"""Symbolic reachability analysis (implicit state enumeration, [3]).

Classic BFS fixed point over the partitioned transition relation; used by
tests (vs explicit BFS), by the solver's statistics and by the image
ablation benchmark.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from repro.bdd import sat_count
from repro.bdd.manager import FALSE, BddManager
from repro.network.bddbuild import NetworkBdds
from repro.obs.trace import span as obs_span
from repro.symb import image as image_mod
from repro.symb.image import image_partitioned
from repro.symb.relation import PartitionedRelation, transition_relation


@dataclass
class ReachabilityResult:
    """Fixed point of forward reachability."""

    states: int  # BDD over the cs variables
    iterations: int
    state_count: int


def reachable_states(
    mgr: BddManager,
    relation: PartitionedRelation,
    init: int,
    cs_vars: Sequence[int],
    ns_vars: Sequence[int],
    input_vars: Sequence[int],
    *,
    schedule: bool = True,
    shards: int = 1,
    shard_opts: Mapping[str, object] | None = None,
) -> ReachabilityResult:
    """Forward reachability from ``init`` under a partitioned relation.

    ``cs_vars`` and ``ns_vars`` must be aligned (same latch order); the
    image is computed over ``ns`` then renamed back to ``cs``.

    ``shards=1`` (the default) runs entirely in-process.  With
    ``shards=N`` (N ≥ 2) the relation parts are clustered across ``N``
    worker processes (:mod:`repro.shard`) and each image step joins the
    transferred per-shard partial images in this manager — the frontier
    sequence, the reached set and the iteration count are identical to
    the in-process path (the sharded image computes the same function,
    and BDDs are canonical).  ``shard_opts`` forwards worker-manager
    knobs (``gc``, ``reorder``, ``max_nodes``) to the pool.
    """
    rename = dict(zip(ns_vars, cs_vars))
    quantify = list(input_vars) + list(cs_vars)
    parts = list(relation)
    # Every frontier is a function of the cs variables, so the
    # early-quantification schedule can be computed once for the whole
    # fixpoint and reused via image_with_plan: each iteration then runs
    # the pure and_exists fold (interned quant sets, no rescheduling).
    # The plan's retire sets hold variable indices, so a GC-triggered
    # in-place sift mid-fixpoint leaves it valid.
    plan = leftover = None
    pool = sharded = None
    if shards > 1:
        from repro.shard import ShardPool, ShardedImage

        # Workers inherit the coordinator's node budget and runtime
        # policies unless shard_opts overrides them.
        opts = {
            "max_nodes": mgr.max_nodes,
            "gc": mgr.gc_policy.mode,
            "reorder": mgr.reorder_policy.mode,
            "backend": getattr(mgr, "backend_name", "python"),
        }
        opts.update(shard_opts or {})
        pool = ShardPool(shards, mgr.var_order(), **opts)
        try:
            sharded = ShardedImage(pool, mgr, parts, quantify, set(cs_vars))
        except BaseException:
            pool.close()
            raise
    elif schedule:
        plan, leftover = image_mod.plan_image(
            mgr, parts, quantify, constraint_support=set(cs_vars)
        )
    reached = init
    frontier = init
    iterations = 0
    # Pin everything the fixpoint still needs, so the kernel may collect
    # the intermediates of earlier iterations (image results, stale
    # frontiers) whenever its growth trigger arms.  The same pins make
    # GC-triggered reordering safe: a sift fired from inside
    # collect_garbage rewrites levels in place and can never reap a
    # referenced root, so the loop's edges stay valid across reorders.
    for part in parts:
        mgr.ref(part)
    mgr.ref(reached)
    mgr.ref(frontier)
    try:
        while frontier != FALSE:
            iterations += 1
            with obs_span("reach_iteration", iteration=iterations) as it_span:
                if sharded is not None:
                    img_ns = sharded.run(frontier)
                elif plan is not None:
                    img_ns = image_mod.image_with_plan(
                        mgr, plan, leftover, frontier, gc=True
                    )
                else:
                    img_ns = image_partitioned(
                        mgr, parts, frontier, quantify, schedule=False, gc=True
                    )
                img_cs = mgr.rename(img_ns, rename)
                mgr.deref(frontier)
                frontier = mgr.ref(mgr.apply_diff(img_cs, reached))
                mgr.deref(reached)
                reached = mgr.ref(mgr.apply_or(reached, img_cs))
                mgr.maybe_collect_garbage()
                it_span.set(live_nodes=len(mgr))
    finally:
        if pool is not None:
            pool.close()
        for part in parts:
            mgr.deref(part)
        mgr.deref(reached)
        mgr.deref(frontier)
    count = sat_count(mgr, reached, list(cs_vars))
    return ReachabilityResult(states=reached, iterations=iterations, state_count=count)


def network_reachable_states(
    bdds: NetworkBdds,
    *,
    ns_vars: Mapping[str, int] | None = None,
    schedule: bool = True,
    shards: int = 1,
    shard_opts: Mapping[str, object] | None = None,
) -> ReachabilityResult:
    """Reachable-state fixed point of a network from its initial state.

    Declares fresh ``ns`` variables (named ``<latch>'``) when ``ns_vars``
    is not supplied; note that appending variables at the bottom of the
    order is fine for correctness but interleaved cs/ns orders (declared
    up front by the caller) are faster.
    """
    mgr = bdds.manager
    if ns_vars is None:
        ns_vars = {}
        for name in bdds.net.latches:
            var_name = f"{name}'"
            try:
                ns_vars[name] = mgr.var_index(var_name)
            except KeyError:
                ns_vars[name] = mgr.add_var(var_name)
    relation = transition_relation(
        mgr, bdds.next_state, ns_vars, order=list(bdds.net.latches)
    )
    latch_order = list(bdds.net.latches)
    # The network's function BDDs are not part of the relation parts; pin
    # them so fixpoint garbage collections cannot reclaim what the caller
    # may still use afterwards.
    pinned = list(bdds.next_state.values()) + list(bdds.outputs.values())
    pinned.append(bdds.init_cube)
    for f in pinned:
        mgr.ref(f)
    try:
        return reachable_states(
            mgr,
            relation,
            bdds.init_cube,
            [bdds.state_vars[n] for n in latch_order],
            [ns_vars[n] for n in latch_order],
            bdds.all_input_vars(),
            schedule=schedule,
            shards=shards,
            shard_opts=shard_opts,
        )
    finally:
        for f in pinned:
            mgr.deref(f)
