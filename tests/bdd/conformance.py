"""Re-export of the cross-backend conformance kit.

The kit itself ships inside the package
(:mod:`repro.bdd.backends.conformance`) so third-party adapters can run
it without checking out this repo's tests; this module re-exports it
under ``tests.bdd.conformance`` for suites (and docs) that reference
the historical location.
"""

from __future__ import annotations

from repro.bdd.backends.conformance import (
    DEFAULT_NAMES,
    OPS,
    Program,
    Step,
    assert_same_functions,
    canonical_roots,
    conformance_pairs,
    program_strategy,
    run_conformance_case,
    run_program,
)

__all__ = [
    "DEFAULT_NAMES",
    "OPS",
    "Program",
    "Step",
    "assert_same_functions",
    "canonical_roots",
    "conformance_pairs",
    "program_strategy",
    "run_conformance_case",
    "run_program",
]
