"""Experiment E6 (ablation): the DCN subset-trimming shortcut.

Footnote 9 of the paper: replacing any subset containing an accepting
product state by the DCN sink "leads to a substantial trimming during
the subset construction".  These benchmarks run the partitioned flow
with and without the shortcut and also record the subset counts, which
are asserted to be no worse with trimming.
"""

from __future__ import annotations

import pytest

from repro.bench import circuits, s27
from repro.eqn import build_latch_split_problem, solve_equation

CASES = {
    "s27": (lambda: s27(), ["G6"]),
    "count6": (lambda: circuits.counter(6), ["b1", "b3", "b5"]),
    "johnson8": (lambda: circuits.johnson(8), ["j1", "j3", "j5", "j7"]),
    "rand10": (
        lambda: circuits.random_network(3, 10, 3, seed=11, n_nodes=60),
        ["l1", "l4", "l7"],
    ),
}


@pytest.mark.parametrize("name", CASES, ids=str)
@pytest.mark.parametrize("trim", [True, False], ids=["trim", "no-trim"])
def test_partitioned_trimming(benchmark, name, trim) -> None:
    make, x = CASES[name]

    def run():
        problem = build_latch_split_problem(make(), x)
        return solve_equation(problem, method="partitioned", trim=trim)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.csf_states > 0


@pytest.mark.parametrize("name", CASES, ids=str)
def test_trimming_reduces_subsets(name) -> None:
    make, x = CASES[name]
    problem = build_latch_split_problem(make(), x)
    trimmed = solve_equation(problem, method="partitioned", trim=True)
    untrimmed = solve_equation(problem, method="partitioned", trim=False)
    assert trimmed.stats.subsets <= untrimmed.stats.subsets
    assert trimmed.csf_states == untrimmed.csf_states
