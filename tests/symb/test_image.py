"""Tests for partitioned image computation and scheduling."""

from __future__ import annotations

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd import BddManager
from repro.symb import (
    PartitionedRelation,
    cluster_parts,
    constrain_parts,
    functions_to_relation,
    image_monolithic,
    image_partitioned,
    schedule_parts,
)
from tests.strategies import DEFAULT_VARS, expressions


def build_parts(exprs):
    mgr = BddManager()
    mgr.add_vars(DEFAULT_VARS)
    return mgr, [e.to_bdd(mgr) for e in exprs]


part_lists = st.lists(expressions(max_leaves=6), min_size=1, max_size=5)
var_subsets = st.sets(st.sampled_from(DEFAULT_VARS), min_size=1, max_size=3)


@given(part_lists, expressions(max_leaves=6), var_subsets)
@settings(max_examples=60, deadline=None)
def test_partitioned_image_equals_monolithic(exprs, constraint_expr, names) -> None:
    mgr, parts = build_parts(exprs)
    constraint = constraint_expr.to_bdd(mgr)
    quantify = [mgr.var_index(n) for n in names]
    mono_rel = PartitionedRelation(mgr, list(parts)).monolithic()
    want = image_monolithic(mgr, mono_rel, constraint, quantify)
    got_scheduled = image_partitioned(mgr, parts, constraint, quantify)
    got_naive = image_partitioned(mgr, parts, constraint, quantify, schedule=False)
    assert got_scheduled == want
    assert got_naive == want


@given(part_lists, var_subsets)
@settings(max_examples=40, deadline=None)
def test_schedule_retires_every_quantified_variable_once(exprs, names) -> None:
    mgr, parts = build_parts(exprs)
    quantify = {mgr.var_index(n) for n in names}
    plan = schedule_parts(mgr, parts, quantify)
    assert len(plan) == len(parts)
    assert sorted(p for p, _ in plan) == sorted(parts)
    retired: list[int] = []
    for _, retire in plan:
        retired.extend(retire)
    # No variable retired twice.
    assert len(retired) == len(set(retired))
    # A retired variable must not appear in any later part.
    for k, (_, retire) in enumerate(plan):
        later_support = set()
        for part, _ in plan[k + 1 :]:
            later_support |= mgr.support(part)
        assert not (set(retire) & later_support)


def test_schedule_prefers_parts_that_retire_variables() -> None:
    mgr = BddManager()
    a, b, c, q = mgr.add_vars(["a", "b", "c", "q"])
    # part0 mentions q, part1 does not; processing part1 first would keep
    # q alive; the schedule must retire q right after the only q-part
    # remains processed last or order parts so q dies early.
    part_q = mgr.apply_and(mgr.var_node(q), mgr.var_node(a))
    part_bc = mgr.apply_and(mgr.var_node(b), mgr.var_node(c))
    plan = schedule_parts(mgr, [part_bc, part_q], [q])
    # Wherever part_q lands, q must be retired immediately after it.
    for part, retire in plan:
        if part == part_q:
            assert q in retire


def test_image_empty_parts_just_quantifies() -> None:
    mgr = BddManager()
    a, b = mgr.add_vars(["a", "b"])
    f = mgr.apply_and(mgr.var_node(a), mgr.var_node(b))
    assert image_partitioned(mgr, [], f, [a]) == mgr.exists(f, [a])


def test_image_false_constraint_short_circuits() -> None:
    mgr = BddManager()
    a, b = mgr.add_vars(["a", "b"])
    assert image_partitioned(mgr, [mgr.var_node(b)], 0, [a]) == 0


def test_transition_image_matches_explicit_successors() -> None:
    # A 2-bit counter: check image of {00} under en=1 is {01}.
    from repro.bench import circuits
    from repro.network import build_network_bdds, declare_network_vars

    net = circuits.counter(2)
    mgr = BddManager()
    iv, sv = declare_network_vars(mgr, net)
    ns_vars = {name: mgr.add_var(f"{name}'") for name in net.latches}
    bdds = build_network_bdds(net, mgr, iv, sv)
    rel = functions_to_relation(
        mgr, ((ns_vars[n], bdds.next_state[n]) for n in net.latches)
    )
    constraint = bdds.init_cube
    img = image_partitioned(
        mgr, list(rel), constraint, [iv["en"]] + list(sv.values())
    )
    # Successors of 00 under en in {0,1}: 00 (hold) and 01 (count).
    models = set()
    for b0, b1 in itertools.product((0, 1), repeat=2):
        env = {"b0'": b0, "b1'": b1}
        if mgr.eval(img, env):
            models.add((b0, b1))
    assert models == {(0, 0), (1, 0)}


def test_cluster_parts_preserves_conjunction() -> None:
    mgr = BddManager()
    mgr.add_vars(DEFAULT_VARS)
    parts = [
        mgr.var_node(0),
        mgr.apply_or(mgr.var_node(1), mgr.var_node(2)),
        mgr.apply_xor(mgr.var_node(3), mgr.var_node(4)),
    ]
    for budget in (1, 10, 10_000):
        clusters = cluster_parts(mgr, parts, max_nodes=budget)
        assert PartitionedRelation(mgr, clusters).monolithic() == PartitionedRelation(
            mgr, parts
        ).monolithic()
    assert len(cluster_parts(mgr, parts, max_nodes=10_000)) == 1
    assert len(cluster_parts(mgr, parts, max_nodes=1)) == 3


def test_constrain_parts_injects_into_smallest() -> None:
    mgr = BddManager()
    a, b, c = mgr.add_vars(["a", "b", "c"])
    small = mgr.var_node(a)
    big = mgr.apply_xor(mgr.var_node(b), mgr.var_node(c))
    out = constrain_parts(mgr, [big, small], mgr.var_node(c))
    assert out[0] == big
    assert out[1] == mgr.apply_and(small, mgr.var_node(c))
    # Empty part list: constraint becomes the only part.
    assert constrain_parts(mgr, [], mgr.var_node(a)) == [mgr.var_node(a)]
    assert constrain_parts(mgr, [], 1) == []
