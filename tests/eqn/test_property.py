"""Property-based cross-validation: random circuits, random splits.

For seeded random sequential networks and random latch subsets, the
partitioned and monolithic flows must agree exactly, the CSF must
contain the particular solution, and composing with F must stay within
the specification — the full set of paper invariants, fuzzed.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import circuits
from repro.automata import contained_in, equivalent
from repro.eqn import (
    build_latch_split_problem,
    compose_with_fixed,
    particular_solution_automaton,
    solve_equation,
    specification_automaton,
)


@st.composite
def split_instances(draw):
    seed = draw(st.integers(min_value=0, max_value=10_000))
    n_inputs = draw(st.integers(min_value=1, max_value=3))
    n_latches = draw(st.integers(min_value=2, max_value=5))
    n_outputs = draw(st.integers(min_value=1, max_value=2))
    net = circuits.random_network(n_inputs, n_latches, n_outputs, seed=seed)
    latches = net.latch_names()
    k = draw(st.integers(min_value=1, max_value=len(latches)))
    x = draw(
        st.lists(
            st.sampled_from(latches), min_size=k, max_size=k, unique=True
        )
    )
    return net, x


@given(split_instances())
@settings(max_examples=20, deadline=None)
def test_flows_agree_on_random_instances(instance) -> None:
    net, x = instance
    prob = build_latch_split_problem(net, x)
    rp = solve_equation(prob, method="partitioned")
    rm = solve_equation(prob, method="monolithic")
    assert rp.csf_states == rm.csf_states
    assert equivalent(rp.csf, rm.csf)


@given(split_instances())
@settings(max_examples=12, deadline=None)
def test_paper_invariants_on_random_instances(instance) -> None:
    net, x = instance
    prob = build_latch_split_problem(net, x)
    result = solve_equation(prob, method="partitioned")
    # X_P ⊆ X (check 1).
    xp = particular_solution_automaton(prob)
    assert contained_in(xp, result.csf).holds
    # F ∘ X ⊆ S (check 3 / soundness of the flexibility).
    s_aut = specification_automaton(prob)
    closed = compose_with_fixed(prob, result.csf)
    assert contained_in(closed, s_aut).holds


@given(split_instances())
@settings(max_examples=10, deadline=None)
def test_ablations_agree_on_random_instances(instance) -> None:
    net, x = instance
    prob = build_latch_split_problem(net, x)
    base = solve_equation(prob, method="partitioned")
    no_schedule = solve_equation(prob, method="partitioned", schedule=False)
    no_trim = solve_equation(prob, method="partitioned", trim=False)
    assert equivalent(base.csf, no_schedule.csf)
    assert equivalent(base.csf, no_trim.csf)
