"""The Table 1 harness: regenerate the paper's experimental table.

For each :class:`~repro.bench.suite.SplitCase` the harness solves the
latch-split equation with the partitioned and the monolithic flow under
the case's resource budget, checks the two agree when both finish, and
prints the same columns as the paper::

    Name  i/o/cs  Fcs/Xcs  States(X)  Part,s  Mono,s  Ratio

"CNC" (could not complete) marks a flow that exceeded its budget,
exactly as in the paper.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.errors import ReproError
from repro.bench.suite import TABLE1_CASES, SplitCase
from repro.eqn.problem import build_latch_split_problem
from repro.eqn.solver import solve_equation
from repro.util.limits import ResourceLimit
from repro.util.tables import format_table
from repro.util.timer import Stopwatch


@dataclass
class Table1Row:
    """One measured row of Table 1."""

    name: str
    io_cs: str
    split: str
    states: int | None
    part_seconds: float | None
    mono_seconds: float | None
    paper_row: str

    @property
    def ratio(self) -> float | None:
        if self.part_seconds and self.mono_seconds:
            return self.mono_seconds / self.part_seconds
        return None

    def cells(self) -> list[str]:
        def time_cell(value: float | None) -> str:
            return f"{value:.2f}" if value is not None else "CNC"

        ratio = self.ratio
        return [
            self.name,
            self.io_cs,
            self.split,
            str(self.states) if self.states is not None else "CNC",
            time_cell(self.part_seconds),
            time_cell(self.mono_seconds),
            f"{ratio:.1f}" if ratio is not None else "-",
        ]


HEADERS = ["Name", "i/o/cs", "Fcs/Xcs", "States(X)", "Part,s", "Mono,s", "Ratio"]


def run_method(
    case: SplitCase, method: str, net=None
) -> tuple[float | None, int | None]:
    """Run one flow under the case budget; ``(None, None)`` on CNC.

    ``net`` lets callers that already parsed the case's circuit (the
    row loop builds it for the header columns) share it instead of
    re-elaborating the netlist once per flow.
    """
    if net is None:
        net = case.network()
    limit = ResourceLimit(max_seconds=case.max_seconds, max_nodes=case.max_nodes)
    watch = Stopwatch()
    try:
        problem = build_latch_split_problem(
            net, list(case.x_latches), max_nodes=case.max_nodes
        )
        result = solve_equation(problem, method=method, limit=limit)
    except ReproError:
        return None, None
    return watch.elapsed(), result.csf_states


def run_case(case: SplitCase, *, methods: Sequence[str] = ("partitioned", "monolithic")) -> Table1Row:
    """Measure one Table 1 row."""
    net = case.network()
    split = f"{net.num_latches - len(case.x_latches)}/{len(case.x_latches)}"
    part_seconds = mono_seconds = None
    part_states = mono_states = None
    if "partitioned" in methods:
        part_seconds, part_states = run_method(case, "partitioned", net)
    if "monolithic" in methods:
        mono_seconds, mono_states = run_method(case, "monolithic", net)
    if part_states is not None and mono_states is not None:
        if part_states != mono_states:
            raise ReproError(
                f"{case.name}: flows disagree "
                f"({part_states} vs {mono_states} CSF states)"
            )
    states = part_states if part_states is not None else mono_states
    return Table1Row(
        name=case.name,
        io_cs=net.stats(),
        split=split,
        states=states,
        part_seconds=part_seconds,
        mono_seconds=mono_seconds,
        paper_row=case.paper_row,
    )


def run_table1(
    cases: Sequence[SplitCase] | None = None,
    *,
    verbose: bool = False,
) -> list[Table1Row]:
    """Measure all (or the given) Table 1 rows."""
    rows = []
    for case in cases if cases is not None else TABLE1_CASES:
        if verbose:
            print(f"running {case.describe()} ...", flush=True)
        rows.append(run_case(case))
    return rows


def render_table1(rows: Sequence[Table1Row]) -> str:
    """Format measured rows like the paper's Table 1."""
    return format_table(HEADERS, [row.cells() for row in rows])


PAPER_TABLE1 = """\
Paper's Table 1 (DATE 2005, 1.6 GHz CPU, CUDD):
Name  i/o/cs    Fcs/Xcs  States(X)  Part,s  Mono,s  Ratio
s510  19/7/6    3/3      54         0.3     0.2     0.7
s208  10/1/8    4/4      497        0.4     0.8     2.0
s298  3/6/14    7/7      553        0.9     2.7     3.0
s349  9/11/15   5/10     2626       37.7    810.3   21.5
s444  3/6/21    5/16     17730      25.9    CNC     -
s526  3/6/21    5/16     141829     276.7   CNC     -"""
