"""Unit tests for the core BDD manager: construction, connectives, caches."""

from __future__ import annotations

import pytest

from repro.bdd import FALSE, TRUE, BddManager, Function
from repro.errors import BddError, BddNodeLimit


@pytest.fixture()
def mgr() -> BddManager:
    m = BddManager()
    m.add_vars(["a", "b", "c"])
    return m


class TestVariables:
    def test_add_var_returns_sequential_indices(self, mgr: BddManager) -> None:
        assert [mgr.var_index(n) for n in ("a", "b", "c")] == [0, 1, 2]

    def test_duplicate_variable_rejected(self, mgr: BddManager) -> None:
        with pytest.raises(BddError):
            mgr.add_var("a")

    def test_var_name_roundtrip(self, mgr: BddManager) -> None:
        for name in ("a", "b", "c"):
            assert mgr.var_name(mgr.var_index(name)) == name

    def test_default_order_is_declaration_order(self, mgr: BddManager) -> None:
        assert mgr.var_order() == ["a", "b", "c"]

    def test_set_order_on_empty_manager(self) -> None:
        m = BddManager()
        m.add_vars(["x", "y"])
        m.set_order(["y", "x"])
        assert m.var_order() == ["y", "x"]
        assert m.var_level(m.var_index("y")) == 0

    def test_set_order_rejects_partial_lists(self) -> None:
        m = BddManager()
        m.add_vars(["x", "y"])
        with pytest.raises(BddError):
            m.set_order(["x"])

    def test_set_order_rejects_nonempty_manager(self, mgr: BddManager) -> None:
        mgr.apply_and(mgr.var_node(0), mgr.var_node(1))
        with pytest.raises(BddError):
            mgr.set_order(["c", "b", "a"])


class TestCanonicity:
    def test_terminals_are_fixed(self) -> None:
        assert FALSE == 0 and TRUE == 1

    def test_reduction_lo_equals_hi(self, mgr: BddManager) -> None:
        # mk(var, t, t) must collapse to t.
        a = mgr.var_node(0)
        assert mgr.ite(a, TRUE, TRUE) == TRUE

    def test_shared_nodes_for_equal_functions(self, mgr: BddManager) -> None:
        a, b = mgr.var_node(0), mgr.var_node(1)
        f1 = mgr.apply_or(mgr.apply_and(a, b), mgr.apply_and(a, b))
        f2 = mgr.apply_and(b, a)
        assert f1 == f2

    def test_de_morgan(self, mgr: BddManager) -> None:
        a, b = mgr.var_node(0), mgr.var_node(1)
        lhs = mgr.apply_not(mgr.apply_and(a, b))
        rhs = mgr.apply_or(mgr.apply_not(a), mgr.apply_not(b))
        assert lhs == rhs

    def test_double_negation(self, mgr: BddManager) -> None:
        a, b = mgr.var_node(0), mgr.var_node(1)
        f = mgr.apply_xor(a, b)
        assert mgr.apply_not(mgr.apply_not(f)) == f


class TestConnectives:
    def test_and_terminal_cases(self, mgr: BddManager) -> None:
        a = mgr.var_node(0)
        assert mgr.apply_and(a, TRUE) == a
        assert mgr.apply_and(TRUE, a) == a
        assert mgr.apply_and(a, FALSE) == FALSE
        assert mgr.apply_and(a, a) == a

    def test_or_terminal_cases(self, mgr: BddManager) -> None:
        a = mgr.var_node(0)
        assert mgr.apply_or(a, FALSE) == a
        assert mgr.apply_or(a, TRUE) == TRUE
        assert mgr.apply_or(a, a) == a

    def test_xor_terminal_cases(self, mgr: BddManager) -> None:
        a = mgr.var_node(0)
        assert mgr.apply_xor(a, a) == FALSE
        assert mgr.apply_xor(a, FALSE) == a
        assert mgr.apply_xor(a, TRUE) == mgr.apply_not(a)

    def test_iff_is_xnor(self, mgr: BddManager) -> None:
        a, b = mgr.var_node(0), mgr.var_node(1)
        assert mgr.apply_iff(a, b) == mgr.apply_not(mgr.apply_xor(a, b))

    def test_implies(self, mgr: BddManager) -> None:
        a, b = mgr.var_node(0), mgr.var_node(1)
        f = mgr.apply_implies(a, b)
        assert mgr.eval(f, {"a": 0, "b": 0, "c": 0})
        assert not mgr.eval(f, {"a": 1, "b": 0, "c": 0})

    def test_diff(self, mgr: BddManager) -> None:
        a, b = mgr.var_node(0), mgr.var_node(1)
        assert mgr.apply_diff(a, b) == mgr.apply_and(a, mgr.apply_not(b))

    def test_ite_recombination(self, mgr: BddManager) -> None:
        a, b, c = (mgr.var_node(i) for i in range(3))
        f = mgr.ite(a, b, c)
        for env in (
            {"a": 1, "b": 1, "c": 0},
            {"a": 1, "b": 0, "c": 1},
            {"a": 0, "b": 1, "c": 0},
            {"a": 0, "b": 0, "c": 1},
        ):
            want = env["b"] if env["a"] else env["c"]
            assert mgr.eval(f, env) == bool(want)

    def test_ite_shortcuts(self, mgr: BddManager) -> None:
        a, b = mgr.var_node(0), mgr.var_node(1)
        assert mgr.ite(TRUE, a, b) == a
        assert mgr.ite(FALSE, a, b) == b
        assert mgr.ite(a, TRUE, FALSE) == a
        assert mgr.ite(a, FALSE, TRUE) == mgr.apply_not(a)
        assert mgr.ite(a, b, b) == b


class TestCofactorsComposition:
    def test_restrict_both_phases(self, mgr: BddManager) -> None:
        a, b = mgr.var_node(0), mgr.var_node(1)
        f = mgr.apply_xor(a, b)
        assert mgr.restrict(f, 0, 1) == mgr.apply_not(b)
        assert mgr.restrict(f, 0, 0) == b

    def test_restrict_var_not_in_support(self, mgr: BddManager) -> None:
        b = mgr.var_node(1)
        assert mgr.restrict(b, 0, 1) == b
        assert mgr.restrict(b, 2, 0) == b

    def test_cofactor_cube(self, mgr: BddManager) -> None:
        a, b, c = (mgr.var_node(i) for i in range(3))
        f = mgr.apply_and(mgr.apply_or(a, b), c)
        assert mgr.cofactor_cube(f, {0: 0, 2: 1}) == b

    def test_compose_substitutes_function(self, mgr: BddManager) -> None:
        a, b, c = (mgr.var_node(i) for i in range(3))
        f = mgr.apply_xor(a, b)
        g = mgr.apply_and(b, c)
        composed = mgr.compose(f, 0, g)  # f[a := b & c]
        assert composed == mgr.apply_xor(mgr.apply_and(b, c), b)

    def test_vector_compose_simultaneous(self, mgr: BddManager) -> None:
        a, b, c = (mgr.var_node(i) for i in range(3))
        f = mgr.apply_xor(a, b)
        # a := c, b := !c simultaneously => xor(c, !c) = TRUE
        result = mgr.vector_compose(f, {0: c, 1: mgr.apply_not(c)})
        assert result == TRUE

    def test_vector_compose_rejects_overlap(self, mgr: BddManager) -> None:
        a, b = mgr.var_node(0), mgr.var_node(1)
        with pytest.raises(BddError):
            mgr.vector_compose(mgr.apply_and(a, b), {0: b, 1: a})


class TestNodeBudget:
    def test_budget_raises(self) -> None:
        m = BddManager(max_nodes=8)
        m.add_vars([f"x{i}" for i in range(8)])
        with pytest.raises(BddNodeLimit):
            f = TRUE
            for i in range(8):
                f = m.apply_xor(f, m.var_node(i))

    def test_budget_value_reported(self) -> None:
        m = BddManager(max_nodes=4)
        m.add_vars(["x", "y", "z"])
        with pytest.raises(BddNodeLimit) as excinfo:
            m.apply_xor(m.apply_xor(m.var_node(0), m.var_node(1)), m.var_node(2))
        assert excinfo.value.limit == 4


class TestInspection:
    def test_support(self, mgr: BddManager) -> None:
        a, c = mgr.var_node(0), mgr.var_node(2)
        f = mgr.apply_and(a, c)
        assert mgr.support(f) == {0, 2}

    def test_support_of_terminals(self, mgr: BddManager) -> None:
        assert mgr.support(TRUE) == set()
        assert mgr.support(FALSE) == set()

    def test_size(self, mgr: BddManager) -> None:
        a, b = mgr.var_node(0), mgr.var_node(1)
        assert mgr.size(TRUE) == 0
        assert mgr.size(a) == 1
        assert mgr.size(mgr.apply_and(a, b)) == 2

    def test_size_many_shares_nodes(self, mgr: BddManager) -> None:
        a, b = mgr.var_node(0), mgr.var_node(1)
        f = mgr.apply_and(a, b)
        assert mgr.size_many([f, f]) == mgr.size(f)

    def test_cube_builder(self, mgr: BddManager) -> None:
        f = mgr.cube({0: 1, 1: 0})
        assert mgr.eval(f, {"a": 1, "b": 0, "c": 0})
        assert not mgr.eval(f, {"a": 1, "b": 1, "c": 0})

    def test_eval_vars(self, mgr: BddManager) -> None:
        a, b = mgr.var_node(0), mgr.var_node(1)
        f = mgr.apply_or(a, b)
        assert mgr.eval_vars(f, {0: 0, 1: 1})
        assert not mgr.eval_vars(f, {0: 0, 1: 0})

    def test_clear_caches_preserves_semantics(self, mgr: BddManager) -> None:
        a, b = mgr.var_node(0), mgr.var_node(1)
        f = mgr.apply_and(a, b)
        mgr.clear_caches()
        assert mgr.apply_and(a, b) == f


class TestFunctionWrapper:
    def test_operator_laws(self, mgr: BddManager) -> None:
        a = Function(mgr, mgr.var_node(0))
        b = Function(mgr, mgr.var_node(1))
        assert (a & b) == (b & a)
        assert (a | ~a).is_true
        assert (a & ~a).is_false
        assert (a ^ b) == ((a & ~b) | (~a & b))

    def test_iff_implies(self, mgr: BddManager) -> None:
        a = Function(mgr, mgr.var_node(0))
        b = Function(mgr, mgr.var_node(1))
        assert a.iff(b) == ~(a ^ b)
        assert a.implies(b) == (~a | b)

    def test_ite(self, mgr: BddManager) -> None:
        a, b, c = (Function(mgr, mgr.var_node(i)) for i in range(3))
        assert a.ite(b, c) == ((a & b) | (~a & c))

    def test_cross_manager_rejected(self) -> None:
        m1, m2 = BddManager(), BddManager()
        a = Function.var(m1, "a")
        b = Function.var(m2, "b")
        with pytest.raises(BddError):
            _ = a & b

    def test_no_truth_value(self, mgr: BddManager) -> None:
        a = Function(mgr, mgr.var_node(0))
        with pytest.raises(BddError):
            bool(a)

    def test_var_declares_on_demand(self) -> None:
        m = BddManager()
        x = Function.var(m, "x")
        y = Function.var(m, "x")
        assert x == y

    def test_restrict_and_support(self, mgr: BddManager) -> None:
        a, b = Function(mgr, mgr.var_node(0)), Function(mgr, mgr.var_node(1))
        f = a ^ b
        assert f.support() == {"a", "b"}
        assert f.restrict({"a": 1}) == ~b
