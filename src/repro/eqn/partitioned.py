"""The paper's contribution: the partitioned transition oracle.

Implements Section 3.2 verbatim.  For each subset state ψ(cs):

* ``Q_ψ(u,v) = ∃i,cs [ Π_j(u_j ≡ U_j) ∧ ¬C ∧ ψ ]`` — the (u,v) classes
  under which some input makes the outputs of ``F`` and ``S``
  non-conform.  Computed **one output at a time** (``¬C = Σ_j ¬C_j``)
  so the monolithic conformance relation is never built.
* ``P_ψ(u,v,ns) = ∃i,cs [ Π_j(u_j ≡ U_j) ∧ Π_k(ns_k ≡ T_k) ∧ ψ ]`` —
  the successor image, a partitioned image computation with early
  quantification of ``i`` and ``cs``.
* ``P'_ψ = P_ψ ∧ ¬Q_ψ``; its (u,v)-cofactor classes are the outgoing
  edges, each leaf (a function of ``ns``) renamed ``ns → cs`` becoming
  the successor subset.
* letters with no successor and not in ``Q_ψ`` go to the accepting
  completion state ``DCA`` (handled by the driver).

Neither ``F`` nor ``S`` is ever completed and no monolithic relation is
ever constructed; validity rests on Theorem 1 (tested in
``tests/automata/test_commutation.py``).

``trim=False`` disables the DCN shortcut of footnote 9 for the E6
ablation: a DC1 flag variable is threaded through the image as one more
partition ``dc' ≡ (dc ∨ ¬C)``, non-conforming subsets are expanded like
any others, and prefix-closure removes them at the end.

``shards=N`` (N ≥ 2) distributes the oracle's image computations over a
:class:`~repro.shard.pool.ShardPool` of worker processes, each owning
its own shard manager: the ``P_ψ`` image runs as a cluster-sharded
:class:`~repro.shard.plan.ShardedImage` (partition clusters assigned to
shards, partial images joined in this manager), and the per-output
``Q_ψ`` images — independent of one another — are dealt round-robin
across the shards and OR-joined.  Both joins are exact, so the sharded
oracle is result-identical to ``shards=1`` (which keeps today's
in-process path, bit for bit).
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.bdd.cube import split_by_vars
from repro.bdd.io import dump_nodes, load_nodes
from repro.bdd.manager import FALSE, BddManager
from repro.symb.image import image_partitioned, image_with_plan, plan_image
from repro.eqn.problem import EquationProblem
from repro.eqn.subset import SubsetEdge


class PartitionedOracle:
    """Transition oracle computing on partitioned representations."""

    def __init__(
        self,
        problem: EquationProblem,
        *,
        schedule: bool = True,
        trim: bool = True,
        shards: int = 1,
        shard_opts: Mapping[str, object] | None = None,
    ) -> None:
        self.problem = problem
        self.schedule = schedule
        self.trim = trim
        mgr: BddManager = problem.manager
        self.mgr = mgr

        # Π_j (u_j ≡ U_j): F's communication outputs.
        self.u_parts = [
            mgr.apply_iff(mgr.var_node(problem.u_vars[name]), problem.f_u[name])
            for name in problem.u_names
        ]
        # Π_k (ns_k ≡ T_k): product transition partition = union of the
        # partitions of F and S (the paper's partitioned product).
        self.t_parts = [
            mgr.apply_iff(mgr.var_node(problem.f_ns_vars[name]), problem.f_next[name])
            for name in problem.f_ns_vars
        ] + [
            mgr.apply_iff(mgr.var_node(problem.s_ns_vars[name]), problem.s_next[name])
            for name in problem.s_ns_vars
        ]
        # Per-output non-conformance ¬C_j = ¬[O^F_j ≡ O^S_j].
        self.nonconf = [
            mgr.apply_not(c) for _, c in problem.conformance_parts()
        ]
        self.quantify = problem.quantify_vars()
        self.ns_vars = problem.all_ns_vars()
        self.rename = problem.ns_to_cs()
        self.uv_vars = problem.uv_vars()
        self.init_cube = problem.init_cube
        if not self.trim:
            # DC1 flag partition: dc' ≡ (dc ∨ ¬C).   Only built in the
            # ablation mode — with trimming the flag never exists.
            any_nonconf = FALSE
            for nc in self.nonconf:
                any_nonconf = mgr.apply_or(any_nonconf, nc)
            flag = mgr.apply_or(mgr.var_node(problem.dc_var), any_nonconf)
            self.dc_part = mgr.apply_iff(mgr.var_node(problem.dc_ns_var), flag)
            self.t_parts = self.t_parts + [self.dc_part]
            self.quantify = self.quantify + [problem.dc_var]
            self.ns_vars = self.ns_vars + [problem.dc_ns_var]
            self.rename = dict(self.rename)
            self.rename[problem.dc_ns_var] = problem.dc_var
            self.init_cube = mgr.apply_and(
                self.init_cube, mgr.apply_not(mgr.var_node(problem.dc_var))
            )
        # Interned quantification set for the per-expansion ∃ns domain
        # computation (revalidates lazily across dynamic reordering).
        self.ns_qs = mgr.quant_set(self.ns_vars)
        # Every ψ is a function of the product cs variables, so the
        # quantification schedules can be computed once and reused for
        # every subset expansion; plan_image interns every retire set as
        # a QuantSet, so each of the thousands of and_exists fold steps
        # skips the per-call level sort/intern pass.
        cs_support = set(self.quantify)
        self._pool = None
        self._p_sharded = None
        self._q_remote: list[tuple[int, int]] = []
        if shards > 1:
            from repro.shard import ShardPool, ShardedImage
            from repro.shard.plan import load_parts, make_plan

            self.p_plan = None
            self.q_plans = None
            # Workers inherit the coordinator's node budget and runtime
            # policies unless shard_opts overrides them: the CNC
            # mechanism (max_nodes) must bound the shard managers too,
            # or an exploding conjunction would grow unchecked in a
            # worker the resource limit cannot see.
            opts = {
                "max_nodes": mgr.max_nodes,
                "gc": mgr.gc_policy.mode,
                "reorder": mgr.reorder_policy.mode,
            }
            opts.update(shard_opts or {})
            pool = ShardPool(shards, mgr.var_order(), **opts)
            self._pool = pool
            try:
                # P_ψ: partition clusters across the shards, joined here.
                self._p_sharded = ShardedImage(
                    pool,
                    mgr,
                    self.u_parts + self.t_parts,
                    self.quantify,
                    cs_support,
                )
                # Q_ψ: one *complete* image per output, dealt
                # round-robin — each shard holds the u-parts plus its
                # outputs' ¬C_j parts.
                u_handles = [
                    load_parts(pool, k, mgr, self.u_parts)
                    for k in range(pool.num_shards)
                ]
                for j, nc in enumerate(self.nonconf):
                    k = j % pool.num_shards
                    (nc_handle,) = load_parts(pool, k, mgr, [nc])
                    plan_id = make_plan(
                        pool,
                        k,
                        mgr,
                        u_handles[k] + [nc_handle],
                        self.quantify,
                        cs_support,
                    )
                    self._q_remote.append((k, plan_id))
            except BaseException:
                # Setup failed: reap the workers deterministically
                # instead of leaving them to __del__ timing.
                self.close()
                raise
        elif self.schedule:
            self.p_plan = plan_image(
                mgr, self.u_parts + self.t_parts, self.quantify, cs_support
            )
            self.q_plans = [
                plan_image(mgr, self.u_parts + [nc], self.quantify, cs_support)
                for nc in self.nonconf
            ]
        else:
            self.p_plan = None
            self.q_plans = None

    # ------------------------------------------------------------------ #

    def live_roots(self) -> list[int]:
        """Every BDD the oracle reuses across expansions (GC roots).

        The subset driver pins these, which also makes them safe across
        GC-triggered in-place reordering: sifting preserves all pinned
        edges, and the reusable image plans stay valid because their
        retire sets are variable indices, not levels.
        """
        roots = [*self.u_parts, *self.t_parts, *self.nonconf, self.init_cube]
        if self.p_plan is not None:
            plan, _ = self.p_plan
            roots.extend(part for part, _ in plan)
            for plan, _ in self.q_plans:
                roots.extend(part for part, _ in plan)
        if not self.trim:
            roots.append(self.dc_part)
        return roots

    def initial(self) -> int:
        return self.init_cube

    def is_accepting(self, psi: int) -> bool:
        """A subset is accepting unless it contains a DC1-flagged state."""
        if self.trim:
            return True
        dc = self.mgr.var_node(self.problem.dc_var)
        return self.mgr.apply_and(psi, dc) == FALSE

    def non_conformance(self, psi: int) -> int:
        """``Q_ψ(u,v)``, computed one output at a time."""
        mgr = self.mgr
        q = FALSE
        if self._pool is not None:
            if not self._q_remote:
                return FALSE
            # Submit every per-output image before collecting anything:
            # the shards compute their outputs' images concurrently.
            blob = dump_nodes(mgr, [psi])
            for shard, plan_id in self._q_remote:
                self._pool.submit(shard, ("image", plan_id, blob))
            for shard, _ in self._q_remote:
                snapshot = self._pool.collect(shard)
                (q_j,) = load_nodes(mgr, snapshot)
                q = mgr.apply_or(q, q_j)
            return q
        if self.q_plans is not None:
            for plan, leftover in self.q_plans:
                # The accumulator must survive collections triggered
                # inside the next image fold.
                with mgr.protect(q):
                    img = image_with_plan(mgr, plan, leftover, psi, gc=True)
                q = mgr.apply_or(q, img)
            return q
        for nc in self.nonconf:
            q = mgr.apply_or(
                q,
                image_partitioned(
                    mgr,
                    self.u_parts + [nc],
                    psi,
                    self.quantify,
                    schedule=False,
                ),
            )
        return q

    def close(self) -> None:
        """Shut down the shard pool, if any (idempotent; ``shards=1`` no-op)."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None
            self._p_sharded = None
            self._q_remote = []

    def successor_image(self, psi: int) -> int:
        """``P_ψ(u,v,ns)`` — the partitioned image of ψ."""
        if self._p_sharded is not None:
            return self._p_sharded.run(psi)
        if self.p_plan is not None:
            plan, leftover = self.p_plan
            return image_with_plan(self.mgr, plan, leftover, psi, gc=True)
        return image_partitioned(
            self.mgr,
            self.u_parts + self.t_parts,
            psi,
            self.quantify,
            schedule=False,
        )

    def expand(self, psi: int) -> tuple[list[SubsetEdge], int]:
        mgr = self.mgr
        # ψ and the successor image must survive collections triggered
        # inside the image folds (everything after the last fold runs
        # GC-free, so plain locals are safe from there on).
        with mgr.protect(psi):
            p = self.successor_image(psi)
            if self.trim:
                with mgr.protect(p):
                    q = self.non_conformance(psi)
        if self.trim:
            p_good = mgr.apply_diff(p, q)
            edges = [
                SubsetEdge(cond=cond, successor=mgr.rename(leaf, self.rename))
                for leaf, cond in split_by_vars(mgr, p_good, self.uv_vars).items()
            ]
            domain = mgr.exists(p, self.ns_qs)
            dca = mgr.apply_diff(mgr.apply_not(q), domain)
            return edges, dca
        # Ablation: no trimming — every class is expanded; acceptance of
        # the successor is decided by its DC1 flag.
        edges = []
        for leaf, cond in split_by_vars(mgr, p, self.uv_vars).items():
            successor = mgr.rename(leaf, self.rename)
            edges.append(
                SubsetEdge(
                    cond=cond,
                    successor=successor,
                    accepting=self.is_accepting(successor),
                )
            )
        domain = mgr.exists(p, self.ns_qs)
        dca = mgr.apply_not(domain)
        return edges, dca
