"""In-place dynamic reordering: swap_levels / sift correctness.

The property under test is the whole point of in-place reordering: after
any sequence of adjacent-level swaps or a full sift — including ones
interleaved with garbage collections — every *held edge* still denotes
exactly the same Boolean function, and the manager's structural
invariants (canonical complement-edge form, ordering, reduction, table
consistency) all hold.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd import BddManager, sift, swap_levels
from repro.bdd.reorder import greedy_sift_order, transfer
from repro.errors import BddError
from tests.strategies import DEFAULT_VARS, all_assignments, expressions

import pytest


def build(expr):
    mgr = BddManager()
    mgr.add_vars(DEFAULT_VARS)
    return mgr, expr.to_bdd(mgr)


def truth_table(mgr, f):
    return [mgr.eval(f, env) for env in all_assignments(DEFAULT_VARS)]


# --------------------------------------------------------------------- #
# Adjacent-level swap
# --------------------------------------------------------------------- #


@given(expressions(), st.integers(min_value=0, max_value=len(DEFAULT_VARS) - 2))
@settings(max_examples=150, deadline=None)
def test_swap_preserves_semantics(expr, level) -> None:
    mgr, f = build(expr)
    mgr.ref(f)
    before = truth_table(mgr, f)
    order_before = mgr.var_order()
    swap_levels(mgr, level, [f])
    mgr.check()
    assert truth_table(mgr, f) == before
    want = list(order_before)
    want[level], want[level + 1] = want[level + 1], want[level]
    assert mgr.var_order() == want


@given(
    expressions(),
    st.lists(
        st.integers(min_value=0, max_value=len(DEFAULT_VARS) - 2),
        min_size=1,
        max_size=12,
    ),
)
@settings(max_examples=100, deadline=None)
def test_swap_sequences_preserve_semantics(expr, levels) -> None:
    mgr, f = build(expr)
    mgr.ref(f)
    before = truth_table(mgr, f)
    for level in levels:
        swap_levels(mgr, level)
    mgr.check()
    assert truth_table(mgr, f) == before


def test_swap_rejects_bad_level() -> None:
    mgr = BddManager()
    mgr.add_vars("ab")
    with pytest.raises(BddError):
        swap_levels(mgr, 1)
    with pytest.raises(BddError):
        swap_levels(mgr, -1)


def test_swap_keeps_literal_edges_valid() -> None:
    mgr = BddManager()
    a, b = mgr.add_vars("ab")
    lit_a, lit_b = mgr.var_node(a), mgr.var_node(b)
    swap_levels(mgr, 0)
    mgr.check()
    assert mgr.var_node(a) == lit_a
    assert mgr.var_node(b) == lit_b
    assert mgr.eval(lit_a, {"a": 1, "b": 0})
    assert not mgr.eval(lit_a, {"a": 0, "b": 1})


# --------------------------------------------------------------------- #
# Full sift
# --------------------------------------------------------------------- #


@given(expressions())
@settings(max_examples=100, deadline=None)
def test_sift_preserves_semantics(expr) -> None:
    mgr, f = build(expr)
    mgr.ref(f)
    before = truth_table(mgr, f)
    result = sift(mgr)
    mgr.check()
    assert truth_table(mgr, f) == before
    assert result.size_after <= result.size_before


@given(expressions(), expressions())
@settings(max_examples=60, deadline=None)
def test_sift_across_gc_sweeps_with_pinned_roots(e1, e2) -> None:
    """Sift between collections; pinned roots keep their functions."""
    mgr = BddManager()
    mgr.add_vars(DEFAULT_VARS)
    f = mgr.ref(e1.to_bdd(mgr))
    g = mgr.ref(e2.to_bdd(mgr))
    tf, tg = truth_table(mgr, f), truth_table(mgr, g)
    mgr.collect_garbage()
    sift(mgr)
    mgr.check()
    h = mgr.ref(mgr.apply_and(f, g ^ 1))
    th = truth_table(mgr, h)
    mgr.collect_garbage()
    sift(mgr)
    mgr.check()
    assert truth_table(mgr, f) == tf
    assert truth_table(mgr, g) == tg
    assert truth_table(mgr, h) == th


@given(expressions())
@settings(max_examples=60, deadline=None)
def test_sift_roots_survive_without_extref(expr) -> None:
    """Unpinned functions passed as ``roots`` must not be reaped."""
    mgr, f = build(expr)
    before = truth_table(mgr, f)
    sift(mgr, [f])
    mgr.check()
    assert truth_table(mgr, f) == before


@given(expressions())
@settings(max_examples=40, deadline=None)
def test_sift_matches_rebuild_reference(expr) -> None:
    """The in-place result equals a rebuild under the sifted order."""
    mgr, f = build(expr)
    mgr.ref(f)
    sift(mgr)
    fresh = BddManager()
    fresh.add_vars(mgr.var_order())
    copy = transfer(f, mgr, fresh)
    assert fresh.size(copy) == mgr.size(f)
    for env in all_assignments(DEFAULT_VARS):
        assert fresh.eval(copy, env) == mgr.eval(f, env)


def _misordered_product(mgr, xs, ys):
    f = 0
    for x, y in zip(xs, ys):
        f = mgr.apply_or(f, mgr.apply_and(mgr.var_node(x), mgr.var_node(y)))
    return f


def test_sift_shrinks_misordered_product() -> None:
    mgr = BddManager()
    n = 6
    xs = mgr.add_vars([f"x{i}" for i in range(n)])
    ys = mgr.add_vars([f"y{i}" for i in range(n)])
    f = mgr.ref(_misordered_product(mgr, xs, ys))
    mgr.collect_garbage()
    size_before = mgr.size(f)
    result = sift(mgr)
    mgr.check()
    assert mgr.size(f) < size_before / 3
    assert result.size_after < result.size_before
    # The optimum interleaves the pairs: every |level(x_i) - level(y_i)|
    # should be 1 in the sifted order.
    for x, y in zip(xs, ys):
        assert abs(mgr.var_level(x) - mgr.var_level(y)) == 1


def test_sift_finds_greedy_order_quality() -> None:
    """In-place sifting should do at least as well as one rebuild pass
    of the (quadratic) greedy reference on the misordered product."""
    mgr = BddManager()
    n = 4
    xs = mgr.add_vars([f"x{i}" for i in range(n)])
    ys = mgr.add_vars([f"y{i}" for i in range(n)])
    f = mgr.ref(_misordered_product(mgr, xs, ys))
    reference = greedy_sift_order(mgr, [f], max_passes=1)
    scratch = BddManager()
    scratch.add_vars(reference)
    ref_size = scratch.size(transfer(f, mgr, scratch))
    sift(mgr)
    assert mgr.size(f) <= ref_size


def test_sift_respects_reorder_boundaries() -> None:
    """Variables never cross a frozen block boundary."""
    mgr = BddManager()
    n = 4
    xs = mgr.add_vars([f"x{i}" for i in range(n)])
    ys = mgr.add_vars([f"y{i}" for i in range(n)])
    mgr.set_reorder_boundaries([n])  # xs block | ys block
    f = mgr.ref(_misordered_product(mgr, xs, ys))
    before = truth_table_pairs(mgr, f, xs, ys)
    sift(mgr)
    mgr.check()
    assert truth_table_pairs(mgr, f, xs, ys) == before
    for x in xs:
        assert mgr.var_level(x) < n
    for y in ys:
        assert mgr.var_level(y) >= n


def truth_table_pairs(mgr, f, xs, ys):
    import itertools

    out = []
    for bits in itertools.product((0, 1), repeat=len(xs) + len(ys)):
        out.append(mgr.eval_vars(f, dict(zip(list(xs) + list(ys), bits))))
    return out


def test_sift_trivial_managers() -> None:
    mgr = BddManager()
    assert sift(mgr).swaps == 0
    mgr.add_var("a")
    assert sift(mgr).swaps == 0
    mgr.add_var("b")
    assert sift(mgr).swaps == 0  # only terminal live


def test_swap_counts_reported() -> None:
    mgr = BddManager()
    n = 5
    xs = mgr.add_vars([f"x{i}" for i in range(n)])
    ys = mgr.add_vars([f"y{i}" for i in range(n)])
    mgr.ref(_misordered_product(mgr, xs, ys))
    result = sift(mgr)
    assert result.swaps > 0
    assert result.vars_sifted > 0
    assert result.size_after == len(mgr)
