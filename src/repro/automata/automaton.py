"""Finite automata with symbolic (BDD) edge labels.

States are explicit (integer ids with names); transition labels are BDDs
over a tuple of Boolean *alphabet variables*, exactly like the automata
manipulated by BALM/MVSIS: a single edge ``s --c--> t`` stands for all
letters (assignments to the alphabet variables) satisfying ``c``.

This hybrid representation is what the paper's computations produce: the
subset construction enumerates subset states explicitly while everything
per-transition stays symbolic.

A letter over variables ``(x, y)`` is a dict ``{"x": 0, "y": 1}`` or a
tuple aligned with :attr:`Automaton.variables`.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass, field

from repro.bdd.manager import FALSE, TRUE, BddManager
from repro.errors import AutomatonError


@dataclass
class Automaton:
    """An automaton over an alphabet of Boolean variables.

    Attributes
    ----------
    manager:
        BDD manager holding the edge-label functions.
    variables:
        Ordered alphabet variable names (must be declared in ``manager``).
    state_names:
        Name per state id.
    accepting:
        Set of accepting state ids.
    initial:
        Initial state id (``None`` for the empty automaton).
    edges:
        ``edges[s]`` maps destination id -> label BDD (conditions to the
        same destination are merged by OR).
    """

    manager: BddManager
    variables: tuple[str, ...]
    state_names: list[str] = field(default_factory=list)
    accepting: set[int] = field(default_factory=set)
    initial: int | None = None
    edges: list[dict[int, int]] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    def __post_init__(self) -> None:
        declared = set(self.manager.var_order())
        missing = [v for v in self.variables if v not in declared]
        if missing:
            raise AutomatonError(f"alphabet variables not declared: {missing}")

    @property
    def num_states(self) -> int:
        return len(self.state_names)

    def add_state(self, name: str | None = None, *, accepting: bool = True) -> int:
        """Add a state; returns its id.  The first state becomes initial."""
        sid = len(self.state_names)
        self.state_names.append(name if name is not None else f"s{sid}")
        self.edges.append({})
        if accepting:
            self.accepting.add(sid)
        if self.initial is None:
            self.initial = sid
        return sid

    def add_edge(self, src: int, dst: int, cond: int) -> None:
        """Add (merge) an edge labelled with BDD ``cond``."""
        if cond == FALSE:
            return
        self._check_state(src)
        self._check_state(dst)
        mgr = self.manager
        bucket = self.edges[src]
        old = bucket.get(dst, FALSE)
        bucket[dst] = mgr.apply_or(old, cond)

    def add_letter_edge(self, src: int, dst: int, letter: Mapping[str, int]) -> None:
        """Add an edge for one concrete letter (or partial cube)."""
        self.add_edge(src, dst, self.letter_cube(letter))

    def letter_cube(self, letter: Mapping[str, int]) -> int:
        """Cube BDD of a (possibly partial) letter assignment."""
        unknown = set(letter) - set(self.variables)
        if unknown:
            raise AutomatonError(f"letter uses non-alphabet variables: {sorted(unknown)}")
        mgr = self.manager
        return mgr.cube(
            {mgr.var_index(name): value for name, value in letter.items()}
        )

    def _check_state(self, sid: int) -> None:
        if not 0 <= sid < self.num_states:
            raise AutomatonError(f"state id {sid} out of range")

    # ------------------------------------------------------------------ #
    # Inspection
    # ------------------------------------------------------------------ #

    def variable_indices(self) -> list[int]:
        """Manager variable indices of the alphabet, in alphabet order."""
        return [self.manager.var_index(name) for name in self.variables]

    def defined_cond(self, sid: int) -> int:
        """BDD of the letters with at least one transition from ``sid``."""
        mgr = self.manager
        cond = FALSE
        for label in self.edges[sid].values():
            cond = mgr.apply_or(cond, label)
            if cond == TRUE:
                break
        return cond

    def is_complete(self) -> bool:
        """Whether every state has a transition for every letter."""
        return all(self.defined_cond(s) == TRUE for s in range(self.num_states))

    def is_deterministic(self) -> bool:
        """Whether labels to distinct destinations are pairwise disjoint."""
        mgr = self.manager
        for bucket in self.edges:
            labels = list(bucket.values())
            for i in range(len(labels)):
                for j in range(i + 1, len(labels)):
                    if mgr.apply_and(labels[i], labels[j]) != FALSE:
                        return False
        return True

    def validate(self) -> None:
        """Check structural invariants; raises :class:`AutomatonError`."""
        allowed = set(self.variable_indices())
        mgr = self.manager
        if self.initial is not None:
            self._check_state(self.initial)
        for sid, bucket in enumerate(self.edges):
            for dst, label in bucket.items():
                self._check_state(dst)
                extra = mgr.support(label) - allowed
                if extra:
                    names = sorted(mgr.var_name(v) for v in extra)
                    raise AutomatonError(
                        f"edge {sid}->{dst} label depends on non-alphabet vars {names}"
                    )

    def successors(self, sid: int, letter: Mapping[str, int]) -> list[int]:
        """Destinations reachable from ``sid`` under a full letter."""
        mgr = self.manager
        env = dict(letter)
        return [
            dst
            for dst, label in self.edges[sid].items()
            if mgr.eval(label, env)
        ]

    def reachable_states(self) -> list[int]:
        """Ids reachable from the initial state (BFS order)."""
        if self.initial is None:
            return []
        seen = [self.initial]
        seen_set = {self.initial}
        queue = [self.initial]
        while queue:
            sid = queue.pop(0)
            for dst, label in self.edges[sid].items():
                if label != FALSE and dst not in seen_set:
                    seen_set.add(dst)
                    seen.append(dst)
                    queue.append(dst)
        return seen

    def trim(self) -> "Automaton":
        """Restrict to states reachable from the initial state."""
        keep = self.reachable_states()
        remap = {old: new for new, old in enumerate(keep)}
        result = Automaton(self.manager, self.variables)
        for old in keep:
            result.add_state(
                self.state_names[old], accepting=old in self.accepting
            )
        if keep:
            result.initial = remap[self.initial]  # type: ignore[index]
        else:
            result.initial = None
        for old in keep:
            for dst, label in self.edges[old].items():
                if dst in remap and label != FALSE:
                    result.add_edge(remap[old], remap[dst], label)
        return result

    def copy(self) -> "Automaton":
        """Structural copy sharing the manager."""
        dup = Automaton(self.manager, self.variables)
        dup.state_names = list(self.state_names)
        dup.accepting = set(self.accepting)
        dup.initial = self.initial
        dup.edges = [dict(bucket) for bucket in self.edges]
        return dup

    def num_edges(self) -> int:
        """Number of (merged) symbolic edges."""
        return sum(len(bucket) for bucket in self.edges)

    def letters(self) -> Iterable[tuple[int, ...]]:
        """All concrete letters of the alphabet (exponential; tests only)."""
        import itertools

        yield from itertools.product((0, 1), repeat=len(self.variables))

    def letter_dict(self, letter: Sequence[int]) -> dict[str, int]:
        """Tuple letter -> named assignment."""
        return dict(zip(self.variables, letter))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Automaton states={self.num_states} edges={self.num_edges()} "
            f"vars={','.join(self.variables)}>"
        )


def empty_automaton(
    manager: BddManager, variables: Sequence[str], *, name: str = "empty"
) -> Automaton:
    """An automaton accepting the empty language (one dead state)."""
    aut = Automaton(manager, tuple(variables))
    aut.add_state(name, accepting=False)
    return aut
