"""End-to-end: a traced 2-shard solve produces a complete span trace.

The acceptance shape of the observability layer, tested literally: one
``solve_latch_split(shards=2)`` run under an installed tracer yields a
Chrome-trace-valid document with coordinator spans *and* pid-tagged
per-worker tracks, and every shard command the pool counted
(``ShardPool.op_counts``) appears as at least one relayed
``shard:<op>`` span.
"""

from __future__ import annotations

import collections

import pytest

from repro.bench import S27_BLIF
from repro.eqn.solver import solve_latch_split
from repro.network.blif import parse_blif
from repro.obs.trace import (
    install_tracer,
    uninstall_tracer,
    validate_trace,
    worker_pids,
)


@pytest.fixture(autouse=True)
def _no_leaked_tracer():
    uninstall_tracer()
    yield
    uninstall_tracer()


def test_traced_sharded_solve_records_every_shard_command() -> None:
    tracer = install_tracer()
    net = parse_blif(S27_BLIF)
    result = solve_latch_split(net, ["G6", "G7"], shards=2, batch=4)
    uninstall_tracer()
    assert result.csf_states == 7  # the solve itself is unperturbed

    data = tracer.to_dict()
    assert validate_trace(data, require_workers=True) == []
    assert len(worker_pids(data)) == 2  # one track per forked worker

    names = collections.Counter(
        e["name"] for e in data["traceEvents"] if e.get("ph") == "X"
    )
    # Coordinator layers all present.
    for coordinator_span in (
        "build_problem",
        "solve",
        "oracle_setup",
        "frontier_batch",
        "extract_csf",
    ):
        assert names[coordinator_span] >= 1, coordinator_span

    # Every pool-counted command op appears as >= 1 relayed worker span —
    # and exactly as many spans as the pool counted commands.
    op_counts = result.stats.extra["pool_op_counts"]
    assert op_counts  # the sharded run actually used the pool
    for op, count in op_counts.items():
        assert names[f"shard:{op}"] == count, op


def test_untraced_solve_is_unchanged() -> None:
    net = parse_blif(S27_BLIF)
    result = solve_latch_split(net, ["G6", "G7"], shards=2, batch=4)
    assert result.csf_states == 7
    assert "pool_op_counts" in result.stats.extra
