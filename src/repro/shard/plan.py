"""Join-tree scheduling for the sharded runtime.

The conjunctive decomposition used here is the early-quantification
argument of the paper, distributed across processes.  Write an image as

.. math::

    \\exists Q .\\; (\\psi \\wedge \\Pi_k C_k)

where the :math:`C_k` are *clusters* of relation parts.  Ship ψ to every
shard; shard *k* computes the partial image

.. math::

    p_k = \\exists L_k .\\; (\\psi \\wedge C_k)

where :math:`L_k \\subseteq Q` are the variables **local** to cluster
*k*: they appear in no other cluster and not in the support of ψ.  Since
conjunction is idempotent (:math:`\\psi \\wedge \\psi = \\psi`) and each
:math:`L_k` is absent from every other factor,

.. math::

    \\exists Q .\\; (\\psi \\wedge \\Pi_k C_k)
    \\;=\\; \\exists (Q - \\cup_k L_k) .\\; \\Pi_k p_k

— the coordinator joins the transferred partials with the ordinary
scheduled ``and_exists`` fold over the remaining shared variables.
Every step is exact, so the sharded image is *function-identical* to the
in-process one (and therefore edge-identical in the coordinator manager,
by BDD canonicity).

:func:`partition_clusters` builds the cluster assignment with the
:func:`repro.symb.schedule.schedule_supports` affinity heuristic;
:class:`ShardedImage` owns the worker-side plans and runs the
transfer-based join per constraint.

Two decompositions, one join protocol
-------------------------------------

The conjunctive *cluster* mode above shines when the quantified
variables split cleanly across clusters (each shard retires its own).
When they do not — image computation over a transition relation shares
the input and current-state variables across *every* part, so the local
sets come out empty and each shard would just build an unquantified
product — the dual *split* mode is used instead: image distributes over
disjunction,

.. math::

    \\exists Q . ((\\psi_1 \\vee \\psi_2) \\wedge \\Pi) =
    (\\exists Q . \\psi_1 \\wedge \\Pi) \\vee (\\exists Q . \\psi_2 \\wedge \\Pi)

so every shard holds *all* parts with a full early-quantification plan,
the constraint is split into cofactor slices on its top variables, each
shard images its slices, and the join is a cheap OR.  ``mode="auto"``
(the default) picks cluster mode when in-shard retirement is possible
and split mode otherwise.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass

from repro.bdd.io import dump_nodes, load_nodes
from repro.bdd.manager import FALSE, BddManager
from repro.shard.pool import ShardError, ShardPool
from repro.symb.image import image_partitioned
from repro.symb.schedule import schedule_supports


@dataclass
class ClusterAssignment:
    """Which parts each shard owns, and which variables it may retire."""

    clusters: list[list[int]]  # part indices per shard (affinity-ordered)
    local_vars: list[list[int]]  # quantify vars retired inside each shard
    shared_vars: list[int]  # quantify vars left for the coordinator join

    @property
    def num_clusters(self) -> int:
        return len(self.clusters)


def partition_clusters(
    mgr: BddManager,
    parts: Sequence[int],
    num_shards: int,
    quantify: Iterable[int],
    constraint_support: Iterable[int] = (),
) -> ClusterAssignment:
    """Assign ``parts`` to (at most) ``num_shards`` affinity clusters.

    The parts are first ordered by the early-quantification heuristic
    (:func:`~repro.symb.schedule.schedule_supports`): parts adjacent in
    that order share support variables and retire quantified variables
    together.  The ordered list is then cut into contiguous chunks of
    balanced total BDD size, one per shard — contiguity preserves the
    affinity, balance keeps the shard workloads comparable.

    For each cluster the *local* variable set is computed: quantified
    variables mentioned by that cluster only — not by any other cluster
    and not by ``constraint_support`` (the support bound of every future
    constraint).  Those are sound to retire entirely inside the shard;
    everything else stays shared and is quantified at the join.
    """
    qset = set(quantify)
    csupp = set(constraint_support)
    supports = [mgr.support(p) for p in parts]
    ordered = [
        idx
        for idx, _ in schedule_supports(
            supports, qset, constraint_support=csupp
        )
    ]
    num = max(1, min(num_shards, len(ordered)))
    sizes = [mgr.size(p) for p in parts]
    total = sum(sizes[i] for i in ordered)

    clusters: list[list[int]] = []
    chunk: list[int] = []
    acc = 0
    done = 0
    for pos, idx in enumerate(ordered):
        chunk.append(idx)
        acc += sizes[idx]
        remaining_parts = len(ordered) - pos - 1
        remaining_chunks = num - len(clusters) - 1
        if remaining_chunks == 0:
            continue
        # Close the chunk once it reaches its proportional share of what
        # is left, but always keep at least one part per remaining chunk.
        target = (total - done) / (remaining_chunks + 1)
        if acc >= target or remaining_parts <= remaining_chunks:
            clusters.append(chunk)
            done += acc
            chunk = []
            acc = 0
    if chunk:
        clusters.append(chunk)

    cluster_supports = [
        set().union(*(supports[i] for i in cluster)) for cluster in clusters
    ]
    local_vars: list[list[int]] = []
    claimed: set[int] = set()
    for k, supp in enumerate(cluster_supports):
        others: set[int] = set(csupp)
        for j, other in enumerate(cluster_supports):
            if j != k:
                others |= other
        local = sorted((supp & qset) - others)
        local_vars.append(local)
        claimed.update(local)
    shared = sorted(qset - claimed)
    return ClusterAssignment(
        clusters=clusters, local_vars=local_vars, shared_vars=shared
    )


def load_parts(
    pool: ShardPool, shard: int, mgr: BddManager, parts: Sequence[int]
) -> list[int]:
    """Transfer ``parts`` into ``shard``'s manager; returns their handles."""
    handles = []
    for part in parts:
        handle = pool.new_handle()
        pool.submit(shard, ("load", handle, dump_nodes(mgr, [part])))
        handles.append(handle)
    for _ in handles:
        pool.collect(shard)
    return handles


def make_plan(
    pool: ShardPool,
    shard: int,
    mgr: BddManager,
    part_handles: Sequence[int],
    quantify: Iterable[int],
    constraint_support: Iterable[int],
) -> int:
    """Build a reusable worker-side image plan; returns its plan id.

    Variables cross the pipe by name, so the plan stays valid however
    either side reorders afterwards.
    """
    plan_id = pool.new_handle()
    pool.call(
        shard,
        (
            "plan",
            plan_id,
            list(part_handles),
            [mgr.var_name(v) for v in quantify],
            [mgr.var_name(v) for v in constraint_support],
        ),
    )
    return plan_id


class ShardedImage:
    """A partitioned image computation distributed over a worker pool.

    Construction assigns partition clusters to shards
    (:func:`partition_clusters`), transfers each cluster into its
    worker's manager once, and precomputes a worker-side image plan that
    retires the cluster's local variables.  Every :meth:`run` then costs
    one constraint broadcast plus one partial-image transfer per shard,
    folded in the coordinator with the ordinary scheduled ``and_exists``
    join over the shared variables.

    The object holds only variable *indices* and worker handles, so it
    stays valid across coordinator-side garbage collection and in-place
    reordering (callers pin the parts themselves, exactly as for
    :func:`repro.symb.image.plan_image`).
    """

    def __init__(
        self,
        pool: ShardPool,
        mgr: BddManager,
        parts: Sequence[int],
        quantify: Iterable[int],
        constraint_support: Iterable[int],
        *,
        mode: str = "auto",
    ) -> None:
        if mode not in ("auto", "cluster", "split"):
            raise ShardError(
                f"unknown sharded-image mode {mode!r}; "
                "choose from 'auto', 'cluster', 'split'"
            )
        self.pool = pool
        self.mgr = mgr
        qvars = list(quantify)
        csupp = list(constraint_support)
        self.assignment = partition_clusters(
            mgr, parts, pool.num_shards, qvars, csupp
        )
        if mode == "auto":
            # Cluster mode only pays when shards can retire variables
            # in-shard; otherwise every shard would just build an
            # unquantified ψ ∧ cluster product and leave all the real
            # work (and more) to the join.
            retirable = sum(len(lv) for lv in self.assignment.local_vars)
            mode = "cluster" if retirable else "split"
        self.mode = mode
        self._plan_ids: list[int] = []
        self._shards: list[int] = []
        if mode == "cluster":
            for k, cluster in enumerate(self.assignment.clusters):
                handles = load_parts(pool, k, mgr, [parts[i] for i in cluster])
                plan_id = make_plan(
                    pool, k, mgr, handles, self.assignment.local_vars[k], csupp
                )
                self._plan_ids.append(plan_id)
                self._shards.append(k)
            self._shared = list(self.assignment.shared_vars)
        else:
            # Split mode: every shard owns all parts + the full plan;
            # run() deals constraint slices across them.
            for k in range(pool.num_shards):
                handles = load_parts(pool, k, mgr, parts)
                plan_id = make_plan(pool, k, mgr, handles, qvars, csupp)
                self._plan_ids.append(plan_id)
                self._shards.append(k)
            self._shared = []
            # Constraint variables eligible as slice splitters, topmost
            # level first (indices, so reordering keeps this valid).
            self._split_candidates = list(csupp)

    # ------------------------------------------------------------------ #

    def run(self, constraint: int) -> int:
        """``∃ quantify . (constraint ∧ Π parts)`` via the shard pool.

        Result-identical to the in-process
        :func:`~repro.symb.image.image_partitioned`: cluster mode joins
        the per-shard partials with a scheduled ``and_exists`` fold,
        split mode ORs the per-slice images.
        """
        if constraint == FALSE:
            return FALSE
        if self.mode == "cluster":
            return self._run_cluster(constraint)
        return self._run_split(constraint)

    def _run_cluster(self, constraint: int) -> int:
        mgr = self.mgr
        blob = dump_nodes(mgr, [constraint])
        for shard, plan_id in zip(self._shards, self._plan_ids):
            self.pool.submit(shard, ("image", plan_id, blob))
        partials = []
        dead = False
        for shard in self._shards:
            snapshot = self.pool.collect(shard)
            if dead:
                continue
            (partial,) = load_nodes(mgr, snapshot)
            if partial == FALSE:
                dead = True
                continue
            partials.append(partial)
        if dead:
            return FALSE
        # The join: each partial already contains ψ (idempotent ∧), so
        # the fold's constraint is TRUE and only the shared variables
        # remain to quantify.
        return image_partitioned(
            mgr, partials, 1, self._shared, schedule=True
        )

    def _slice_pairs(self, constraint: int) -> list[tuple[int, dict[str, int]]]:
        """Disjoint cofactor slices of ``constraint``, one per shard.

        Splits on the topmost constraint variables actually in the
        support, binary-tree style, until there are enough slices (or no
        split variable is left).  The slices OR back to the constraint
        exactly, so the join is lossless.  Each slice is returned with
        its defining assignment (variable *name* -> 0/1), so a worker
        holding the constraint can rebuild the slice without the slice
        BDD ever crossing the wire (the resident-handle protocol).
        """
        mgr = self.mgr
        support = mgr.support(constraint)
        splitters = sorted(
            (v for v in self._split_candidates if v in support),
            key=mgr.var_level,
        )
        slices: list[tuple[int, dict[str, int]]] = [(constraint, {})]
        for var in splitters:
            if len(slices) >= self.pool.num_shards:
                break
            pos, neg = mgr.var_node(var), mgr.nvar_node(var)
            name = mgr.var_name(var)
            nxt: list[tuple[int, dict[str, int]]] = []
            for s, spec in slices:
                lo = mgr.apply_and(s, neg)
                hi = mgr.apply_and(s, pos)
                if lo != FALSE:
                    nxt.append((lo, {**spec, name: 0}))
                if hi != FALSE:
                    nxt.append((hi, {**spec, name: 1}))
            slices = nxt
        return slices

    def _slices(self, constraint: int) -> list[int]:
        """The slice BDDs alone (the snapshot-shipping split path)."""
        return [edge for edge, _ in self._slice_pairs(constraint)]

    def _run_split(self, constraint: int) -> int:
        mgr = self.mgr
        slices = self._slices(constraint)
        submitted: list[int] = []
        for i, s in enumerate(slices):
            shard = i % len(self._shards)
            self.pool.submit(
                shard, ("image", self._plan_ids[shard], dump_nodes(mgr, [s]))
            )
            submitted.append(shard)
        result = FALSE
        for shard in submitted:
            (img,) = load_nodes(mgr, self.pool.collect(shard))
            result = mgr.apply_or(result, img)
        return result

    # -- the resident-handle batched protocol --------------------------- #

    def submit_resident(
        self, items: Sequence[tuple[int, int]]
    ) -> Callable[[], list[int]]:
        """Submit a batch of images over **shard-resident** constraints.

        ``items`` is a list of ``(handle, constraint)`` pairs: the
        handle names the constraint in every worker's resident registry
        (the caller must have ``retain``-ed it there first), and the
        coordinator-side edge is used only for slice planning — no
        snapshot is shipped.  Every worker command is submitted
        immediately; the returned closure collects the replies (in the
        ShardPool FIFO order) and joins them, one result per item.
        Splitting submit from collect lets callers pipeline further
        commands — e.g. the per-output ``Q_ψ`` images of the same batch
        — behind these before blocking on any reply.

        The join math is identical to :meth:`run`, so the batched
        resident path is result-identical to the in-process image.
        """
        if self.mode == "cluster":
            return self._submit_resident_cluster(items)
        return self._submit_resident_split(items)

    def _submit_resident_cluster(
        self, items: Sequence[tuple[int, int]]
    ) -> Callable[[], list[int]]:
        handles = [handle for handle, _ in items]
        for shard, plan_id in zip(self._shards, self._plan_ids):
            self.pool.submit(shard, ("expand_batch", plan_id, handles))

        def collect() -> list[int]:
            mgr = self.mgr
            per_shard = [self.pool.collect(shard) for shard in self._shards]
            results: list[int] = []
            for i in range(len(items)):
                partials = []
                dead = False
                for snaps in per_shard:
                    (partial,) = load_nodes(mgr, snaps[i])
                    if partial == FALSE:
                        dead = True
                        break
                    partials.append(partial)
                if dead:
                    results.append(FALSE)
                    continue
                results.append(
                    image_partitioned(
                        mgr, partials, 1, self._shared, schedule=True
                    )
                )
            return results

        return collect

    def _submit_resident_split(
        self, items: Sequence[tuple[int, int]]
    ) -> Callable[[], list[int]]:
        num = len(self._shards)
        per_shard_items: list[list[tuple[int, dict[str, int]]]] = [
            [] for _ in range(num)
        ]
        owners: list[list[int]] = [[] for _ in range(num)]
        cursor = 0
        for i, (handle, constraint) in enumerate(items):
            for _, spec in self._slice_pairs(constraint):
                pos = cursor % num
                cursor += 1
                per_shard_items[pos].append((handle, spec))
                owners[pos].append(i)
        submitted: list[int] = []
        for pos in range(num):
            if not per_shard_items[pos]:
                continue
            self.pool.submit(
                self._shards[pos],
                ("expand_batch", self._plan_ids[pos], per_shard_items[pos]),
            )
            submitted.append(pos)

        def collect() -> list[int]:
            mgr = self.mgr
            results = [FALSE] * len(items)
            for pos in submitted:
                snaps = self.pool.collect(self._shards[pos])
                for i, snap in zip(owners[pos], snaps):
                    (img,) = load_nodes(mgr, snap)
                    results[i] = mgr.apply_or(results[i], img)
            return results

        return collect

    def worker_stats(self) -> list[dict]:
        """Per-shard manager statistics for the shards this image uses."""
        return self.pool.stats()
