"""Tests for STG extraction and KISS2 / DOT I/O."""

from __future__ import annotations

import pytest

from repro.bdd.manager import BddManager
from repro.bench import circuits, figure3_network, s27
from repro.errors import AutomatonError
from repro.automata import (
    accepts,
    automaton_to_dot,
    complete,
    enumerate_language,
    equivalent,
    network_to_automaton,
    parse_kiss,
    reachable_state_count,
    write_kiss,
)
from repro.network import Network


class TestStg:
    def test_figure3_reachable_states(self) -> None:
        # The paper's example: reachable states are 00, 01, 10 (11 is not).
        aut = network_to_automaton(figure3_network())
        assert sorted(aut.state_names) == ["00", "01", "10"]
        assert aut.accepting == {0, 1, 2}

    def test_figure3_transitions_match_paper(self) -> None:
        aut = network_to_automaton(figure3_network())
        names = {name: sid for sid, name in enumerate(aut.state_names)}
        # "the transition from state (00) under input 0 is to state (01).
        # The output produced by the network in this case is 0."
        assert aut.successors(names["00"], {"i": 0, "o": 0}) == [names["01"]]
        # From (10), any input produces output 1 and goes to (01): label -1.
        assert aut.successors(names["10"], {"i": 0, "o": 1}) == [names["01"]]
        assert aut.successors(names["10"], {"i": 1, "o": 1}) == [names["01"]]
        # Undefined: from (00) under (i,o) = (1,1) — the paper's example.
        assert aut.successors(names["00"], {"i": 1, "o": 1}) == []

    def test_figure3_completion_adds_dc(self) -> None:
        aut = complete(network_to_automaton(figure3_network()))
        assert aut.num_states == 4
        dc = aut.num_states - 1
        assert dc not in aut.accepting
        # DC has the universal self-loop.
        assert aut.edges[dc] == {dc: 1}

    def test_stg_is_deterministic_for_deterministic_networks(self) -> None:
        for net in (figure3_network(), s27(), circuits.counter(3)):
            aut = network_to_automaton(net)
            assert aut.is_deterministic()

    def test_counter_state_count(self) -> None:
        assert reachable_state_count(circuits.counter(3)) == 8
        assert reachable_state_count(circuits.johnson(3)) == 6
        assert reachable_state_count(circuits.shift_register(2)) == 4

    def test_s27_reachable_states(self) -> None:
        # s27 has 6 reachable states out of 8 (standard result).
        count = reachable_state_count(s27())
        assert count == 6

    def test_max_states_guard(self) -> None:
        with pytest.raises(AutomatonError):
            network_to_automaton(circuits.counter(4), max_states=3)

    def test_input_output_overlap_rejected(self) -> None:
        net = Network()
        net.add_input("a")
        net.add_output("a")
        with pytest.raises(AutomatonError):
            network_to_automaton(net)

    def test_shared_manager_reuse(self) -> None:
        mgr = BddManager()
        aut1 = network_to_automaton(figure3_network(), mgr)
        aut2 = network_to_automaton(figure3_network(), mgr)
        assert aut1.manager is aut2.manager
        assert equivalent(aut1, aut2)

    def test_stg_language_matches_simulation(self) -> None:
        net = circuits.sequence_detector("11")
        aut = network_to_automaton(net)
        # Simulate a few input words and check the (i, o) trace is accepted.
        import random

        rng = random.Random(1)
        for _ in range(20):
            word_inputs = [{"x": rng.randint(0, 1)} for _ in range(5)]
            outs = net.simulate(word_inputs)
            word = [{**i, **o} for i, o in zip(word_inputs, outs)]
            assert accepts(aut, word)
            # Corrupt the last output: must be rejected.
            bad = [dict(letter) for letter in word]
            bad[-1]["hit"] ^= 1
            assert not accepts(aut, bad)


class TestKiss:
    def test_roundtrip_preserves_language(self) -> None:
        aut = network_to_automaton(figure3_network())
        text = write_kiss(aut)
        back = parse_kiss(text)
        assert back.num_states == aut.num_states
        assert enumerate_language(back, 3) == enumerate_language(aut, 3)

    def test_roundtrip_with_nonaccepting_states(self) -> None:
        aut = complete(network_to_automaton(figure3_network()))
        back = parse_kiss(write_kiss(aut))
        assert len(back.accepting) == len(aut.accepting)
        assert enumerate_language(back, 3) == enumerate_language(aut, 3)

    def test_kiss_text_structure(self) -> None:
        aut = network_to_automaton(figure3_network())
        text = write_kiss(aut)
        assert ".i 2" in text
        assert ".ilb i o" in text
        assert ".r 00" in text
        assert text.rstrip().endswith(".e")

    def test_parse_kiss_defaults(self) -> None:
        text = ".i 1\n.r A\n0 A B\n1 A A\n- B B\n.e\n"
        aut = parse_kiss(text)
        assert aut.num_states == 2
        assert aut.variables == ("x0",)
        assert aut.accepting == {0, 1}

    @pytest.mark.parametrize(
        "bad",
        [
            "0 A B\n.e\n",  # missing .i
            ".i 2\n.ilb a\n.e\n",  # width mismatch
            ".i 1\n.bogus\n.e\n",
            ".i 1\n0 A\n.e\n",
            ".i 1\n00 A B\n.e\n",
            ".i 1\n2 A B\n.e\n",
            ".i 1\n.r A\n0 A A\n.accepting GHOST\n.e\n",
        ],
    )
    def test_malformed_kiss_rejected(self, bad: str) -> None:
        with pytest.raises(AutomatonError):
            parse_kiss(bad)


class TestDot:
    def test_dot_output_mentions_states_and_labels(self) -> None:
        aut = complete(network_to_automaton(figure3_network()))
        dot = automaton_to_dot(aut)
        assert "digraph" in dot
        assert "doublecircle" in dot  # accepting
        assert "gray80" in dot  # the DC state
        assert "->" in dot
