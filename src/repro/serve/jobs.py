"""Job objects and the thread-safe registry behind the server.

A job is one submitted solve: its canonical spec and cache key, a
lifecycle status, a monotonically numbered event stream (what the
client polls with ``?since=N``) and a cancellation flag the subset
driver checks at every batch boundary.

Lifecycle::

    queued ──▶ running ──▶ done
                  │  ╲──▶ failed      (budget exceeded, bad input, ...)
                  ╰─────▶ cancelled   (client asked; solver unwound)

A cache hit skips the whole pipeline: the job is born ``done`` with
``cached=True`` and never reaches the executor — which is what makes
the "zero shard operations on a repeat solve" guarantee trivially
auditable.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field

from repro.errors import ServeError

#: Legal job states.
STATUSES = ("queued", "running", "done", "failed", "cancelled")

#: States a job can never leave.
TERMINAL = ("done", "failed", "cancelled")


@dataclass
class Job:
    """One submitted solve and everything observable about it."""

    id: str
    spec: dict
    key: str
    options: dict = field(default_factory=dict)  # budgets, checkpointing
    status: str = "queued"
    cached: bool = False
    resumed: bool = False
    error: str | None = None
    submitted_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    summary: dict | None = None  # csf_states / seconds / ... once done
    metrics: dict | None = None  # per-job counter snapshot once done
    events: list[dict] = field(default_factory=list)
    cancel_event: threading.Event = field(default_factory=threading.Event)

    def summary_dict(self) -> dict:
        """JSON-safe view for the jobs listing and status endpoint."""
        return {
            "id": self.id,
            "status": self.status,
            "cache_key": self.key,
            "cached": self.cached,
            "resumed": self.resumed,
            "error": self.error,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "events": len(self.events),
            "result": self.summary,
            "metrics": self.metrics,
        }


class JobRegistry:
    """Thread-safe id -> :class:`Job` map with an event stream per job.

    The HTTP handler threads read from it while the single executor
    thread writes; one lock covers both (operations are tiny — there is
    never BDD work under the lock).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._jobs: dict[str, Job] = {}
        self._counter = itertools.count(1)

    def create(self, spec: dict, key: str, **init) -> Job:
        with self._lock:
            job = Job(id=f"job-{next(self._counter)}", spec=spec, key=key, **init)
            self._jobs[job.id] = job
            return job

    def get(self, job_id: str) -> Job:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise ServeError(f"unknown job {job_id!r}")
        return job

    def list(self) -> list[Job]:
        with self._lock:
            return list(self._jobs.values())

    # -- state transitions (executor side) ----------------------------- #

    def set_status(self, job: Job, status: str, *, error: str | None = None) -> None:
        if status not in STATUSES:
            raise ServeError(f"unknown job status {status!r}")
        with self._lock:
            job.status = status
            if status == "running":
                job.started_at = time.time()
            if status in TERMINAL:
                job.finished_at = time.time()
            if error is not None:
                job.error = error
        self.add_event(job, {"type": "status", "status": status, "error": error})

    def add_event(self, job: Job, event: dict) -> dict:
        """Append an event, stamping its sequence number and timestamps.

        Events carry both clocks: ``ts`` (wall, ``time.time()``) for
        display, and ``mono`` (``time.perf_counter()``) so event-stream
        deltas can be compared against solver timings without wall-clock
        drift/adjustment skew.
        """
        with self._lock:
            stamped = {
                "seq": len(job.events) + 1,
                "ts": time.time(),
                "mono": time.perf_counter(),
                **event,
            }
            job.events.append(stamped)
        return stamped

    def events_since(self, job_id: str, since: int = 0) -> tuple[list[dict], int]:
        """Events with ``seq > since`` plus the new cursor."""
        job = self.get(job_id)
        with self._lock:
            fresh = [e for e in job.events if e["seq"] > since]
            cursor = job.events[-1]["seq"] if job.events else since
        return fresh, max(since, cursor)

    def counts(self) -> dict:
        """Jobs per status (the health endpoint's payload)."""
        with self._lock:
            out = dict.fromkeys(STATUSES, 0)
            for job in self._jobs.values():
                out[job.status] += 1
        return out
