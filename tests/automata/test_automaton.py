"""Tests for the automaton data structure itself."""

from __future__ import annotations

import pytest

from repro.bdd.manager import FALSE, TRUE, BddManager
from repro.errors import AutomatonError
from repro.automata import Automaton, empty_automaton


class TestConstruction:
    def test_undeclared_alphabet_rejected(self) -> None:
        m = BddManager()
        with pytest.raises(AutomatonError):
            Automaton(m, ("ghost",))

    def test_first_state_becomes_initial(self, mgr) -> None:
        aut = Automaton(mgr, ("x", "y"))
        s0 = aut.add_state("a")
        aut.add_state("b")
        assert aut.initial == s0

    def test_letter_edge_and_successors(self, mgr) -> None:
        aut = Automaton(mgr, ("x", "y"))
        s0, s1 = aut.add_state(), aut.add_state()
        aut.add_letter_edge(s0, s1, {"x": 1, "y": 0})
        assert aut.successors(s0, {"x": 1, "y": 0}) == [s1]
        assert aut.successors(s0, {"x": 1, "y": 1}) == []

    def test_edges_to_same_destination_merge(self, mgr) -> None:
        aut = Automaton(mgr, ("x", "y"))
        s0, s1 = aut.add_state(), aut.add_state()
        aut.add_letter_edge(s0, s1, {"x": 0, "y": 0})
        aut.add_letter_edge(s0, s1, {"x": 1, "y": 1})
        assert len(aut.edges[s0]) == 1
        assert aut.successors(s0, {"x": 0, "y": 0}) == [s1]
        assert aut.successors(s0, {"x": 1, "y": 1}) == [s1]

    def test_false_edges_are_dropped(self, mgr) -> None:
        aut = Automaton(mgr, ("x", "y"))
        s0, s1 = aut.add_state(), aut.add_state()
        aut.add_edge(s0, s1, FALSE)
        assert aut.edges[s0] == {}

    def test_letter_with_foreign_variable_rejected(self, mgr) -> None:
        aut = Automaton(mgr, ("x",))
        s0 = aut.add_state()
        with pytest.raises(AutomatonError):
            aut.add_letter_edge(s0, s0, {"y": 1})

    def test_bad_state_ids_rejected(self, mgr) -> None:
        aut = Automaton(mgr, ("x", "y"))
        aut.add_state()
        with pytest.raises(AutomatonError):
            aut.add_edge(0, 5, TRUE)


class TestPredicates:
    def test_is_complete(self, mgr) -> None:
        aut = Automaton(mgr, ("x", "y"))
        s0 = aut.add_state()
        aut.add_edge(s0, s0, TRUE)
        assert aut.is_complete()

    def test_is_not_complete(self, mgr) -> None:
        aut = Automaton(mgr, ("x", "y"))
        s0 = aut.add_state()
        aut.add_letter_edge(s0, s0, {"x": 1})
        assert not aut.is_complete()

    def test_is_deterministic(self, mgr) -> None:
        aut = Automaton(mgr, ("x", "y"))
        s0, s1 = aut.add_state(), aut.add_state()
        aut.add_letter_edge(s0, s0, {"x": 0})
        aut.add_letter_edge(s0, s1, {"x": 1})
        assert aut.is_deterministic()
        aut.add_letter_edge(s0, s1, {"x": 0, "y": 1})
        assert not aut.is_deterministic()

    def test_defined_cond(self, mgr) -> None:
        aut = Automaton(mgr, ("x", "y"))
        s0, s1 = aut.add_state(), aut.add_state()
        aut.add_letter_edge(s0, s1, {"x": 1})
        x = mgr.var_node(mgr.var_index("x"))
        assert aut.defined_cond(s0) == x
        assert aut.defined_cond(s1) == FALSE

    def test_validate_rejects_foreign_support(self, mgr) -> None:
        mgr.add_var("z")
        aut = Automaton(mgr, ("x", "y"))
        s0 = aut.add_state()
        aut.edges[s0][s0] = mgr.var_node(mgr.var_index("z"))
        with pytest.raises(AutomatonError):
            aut.validate()


class TestTrimCopy:
    def test_trim_removes_unreachable(self, mgr) -> None:
        aut = Automaton(mgr, ("x", "y"))
        s0, s1, s2 = aut.add_state("a"), aut.add_state("b"), aut.add_state("c")
        aut.add_edge(s0, s1, TRUE)
        aut.add_edge(s2, s0, TRUE)  # s2 unreachable
        trimmed = aut.trim()
        assert trimmed.num_states == 2
        assert trimmed.state_names == ["a", "b"]

    def test_trim_empty_initial(self, mgr) -> None:
        aut = Automaton(mgr, ("x", "y"))
        trimmed = aut.trim()
        assert trimmed.num_states == 0
        assert trimmed.initial is None

    def test_copy_is_independent(self, mgr) -> None:
        aut = Automaton(mgr, ("x", "y"))
        s0 = aut.add_state()
        dup = aut.copy()
        dup.add_state()
        dup.add_edge(0, 1, TRUE)
        assert aut.num_states == 1
        assert aut.edges[s0] == {}

    def test_empty_automaton(self, mgr) -> None:
        aut = empty_automaton(mgr, ("x", "y"))
        assert aut.num_states == 1
        assert aut.accepting == set()

    def test_num_edges(self, mgr) -> None:
        aut = Automaton(mgr, ("x", "y"))
        s0, s1 = aut.add_state(), aut.add_state()
        aut.add_letter_edge(s0, s1, {"x": 1})
        aut.add_letter_edge(s0, s0, {"x": 0})
        assert aut.num_edges() == 2
