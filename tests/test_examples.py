"""Smoke tests: every example script must run cleanly end to end."""

from __future__ import annotations

import pathlib
import runpy
import sys

import pytest

EXAMPLES = sorted(
    p for p in (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(path, capsys, monkeypatch) -> None:
    monkeypatch.setattr(sys, "argv", [str(path)])
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{path.name} produced no output"


def test_examples_exist() -> None:
    names = {p.stem for p in EXAMPLES}
    assert {
        "quickstart",
        "figure3_worked_example",
        "latch_split_resynthesis",
        "pipeline_stage_synthesis",
        "symbolic_engine_tour",
        "adaptive_runtime_tour",
    } <= names


def test_examples_bootstrap_src_layout() -> None:
    """Every example must run bare (`python examples/<name>.py`) from a
    clean checkout: each carries the src-layout sys.path bootstrap."""
    for path in EXAMPLES:
        assert "src layout" in path.read_text(), f"{path.name} lacks bootstrap"
