#!/usr/bin/env python
"""Tour of the symbolic substrate: BDDs, images, reachability.

The paper's method stands on three layers that this library also exposes
directly: the BDD manager (a CUDD substitute), partitioned image
computation with early-quantification scheduling, and symbolic
reachability ("implicit state enumeration").  This example drives each
layer by hand on a small circuit.

Run:  python examples/symbolic_engine_tour.py
"""

import sys
from pathlib import Path

try:  # src layout: let `python examples/<name>.py` run without installing
    import repro  # noqa: F401
except ImportError:
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bdd import BddManager, Function, sat_count
from repro.bench import circuits
from repro.network import build_network_bdds
from repro.symb import (
    PartitionedRelation,
    functions_to_relation,
    image_partitioned,
    network_reachable_states,
    schedule_parts,
)


def main() -> None:
    # --- layer 1: the BDD engine -------------------------------------- #
    mgr = BddManager()
    a, b, c = Function.vars(mgr, "a", "b", "c")
    f = (a & ~b) | (b & c)
    print(f"f = (a & !b) | (b & c): {f.size()} nodes, "
          f"{f.sat_count(['a', 'b', 'c'])} of 8 minterms")
    print(f"∃b.f depends on {sorted(f.exists('b').support())}")

    # --- layer 2: a circuit as partitioned BDDs ----------------------- #
    net = circuits.johnson(5)
    engine = BddManager()
    input_vars = {n: engine.add_var(n) for n in net.inputs}
    cs, ns = {}, {}
    for name in net.latches:  # interleave cs/ns: good orders matter
        cs[name] = engine.add_var(name)
        ns[name] = engine.add_var(f"{name}'")
    bdds = build_network_bdds(net, engine, input_vars, cs)
    relation = functions_to_relation(
        engine, ((ns[n], bdds.next_state[n]) for n in net.latches)
    )
    mono_size = engine.size(PartitionedRelation(engine, list(relation)).monolithic())
    print(f"\n{net.name}: partitioned relation {relation.size()} nodes "
          f"in {len(relation)} parts (monolithic: {mono_size} nodes)")

    # Early-quantification schedule for one image step.
    quantify = list(input_vars.values()) + list(cs.values())
    plan = schedule_parts(engine, list(relation), quantify)
    retire_trace = [len(retire) for _, retire in plan]
    print(f"schedule retires quantified vars per step: {retire_trace}")

    # One image: successors of the initial state.
    img = image_partitioned(engine, list(relation), bdds.init_cube, quantify)
    count = sat_count(engine, img, list(ns.values()))
    print(f"image of the initial state: {count} successor state(s)")

    # --- layer 3: reachability fixed point ----------------------------- #
    result = network_reachable_states(bdds, ns_vars=ns)
    print(f"reachable states: {result.state_count} "
          f"(fixed point in {result.iterations} iterations; "
          f"a Johnson counter visits 2n = {2 * net.num_latches} states)")


if __name__ == "__main__":
    main()
