"""Automaton operations for language-equation solving (Section 3).

These are the literal operations of the paper's Algorithm 1 —
``Support``, ``Complete``, ``Determinize``, ``Complement``, ``Product``,
``PrefixClose``, ``Progressive`` — implemented on explicit-state automata
with symbolic edge labels.  The symbolic solver flows reimplement the
performance-critical composition of these steps; this module is the
readable reference that the cross-validation tests compare against.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Callable, Iterator

from repro.bdd.manager import FALSE, TRUE, BddManager
from repro.errors import AutomatonError
from repro.automata.automaton import Automaton, empty_automaton


def complete(aut: Automaton, *, dc_name: str = "DC") -> Automaton:
    """Add a non-accepting DC state catching all undefined letters.

    The DC state has a universal self-loop (prefix-closedness, Section 2).
    Returns the input unchanged (a copy) when already complete.
    """
    result = aut.copy()
    mgr = result.manager
    undefined = {
        sid: mgr.apply_not(result.defined_cond(sid))
        for sid in range(result.num_states)
    }
    if all(cond == FALSE for cond in undefined.values()):
        return result
    dc = result.add_state(dc_name, accepting=False)
    for sid, cond in undefined.items():
        result.add_edge(sid, dc, cond)
    result.add_edge(dc, dc, TRUE)
    return result


def complement(aut: Automaton) -> Automaton:
    """Complement a deterministic complete automaton (swap acceptance)."""
    if not aut.is_complete():
        raise AutomatonError("complement requires a complete automaton")
    if not aut.is_deterministic():
        raise AutomatonError("complement requires a deterministic automaton")
    result = aut.copy()
    result.accepting = set(range(result.num_states)) - aut.accepting
    return result


def split_regions(
    mgr: BddManager, targets: Sequence[tuple[int, int]]
) -> Iterator[tuple[frozenset[int], int]]:
    """Enumerate the atoms of a family of labelled conditions.

    Given ``targets`` as (destination, condition) pairs, yield
    ``(subset_of_destinations, region)`` for every non-empty region of the
    letter space, where ``region`` is the set of letters going exactly to
    that subset of destinations.  Letters with no destination are skipped.
    """

    def rec(idx: int, cond: int, members: tuple[int, ...]) -> Iterator[tuple[frozenset[int], int]]:
        if cond == FALSE:
            return
        if idx == len(targets):
            if members:
                yield frozenset(members), cond
            return
        dst, label = targets[idx]
        yield from rec(idx + 1, mgr.apply_and(cond, label), members + (dst,))
        yield from rec(idx + 1, mgr.apply_diff(cond, label), members)

    yield from rec(0, TRUE, ())


def determinize(
    aut: Automaton,
    *,
    name_subset: Callable[[frozenset[int]], str] | None = None,
) -> Automaton:
    """Subset construction.

    A subset state is accepting iff it contains an accepting state.  The
    result is deterministic but in general *not* complete (letters with
    no successor stay undefined, as in the paper where completion is a
    separate, commuting step).
    """
    if aut.initial is None:
        return empty_automaton(aut.manager, aut.variables)
    mgr = aut.manager

    def default_name(subset: frozenset[int]) -> str:
        return "{" + ",".join(sorted(aut.state_names[s] for s in subset)) + "}"

    namer = name_subset or default_name
    result = Automaton(mgr, aut.variables)
    first = frozenset({aut.initial})
    ids: dict[frozenset[int], int] = {}

    def subset_id(subset: frozenset[int]) -> int:
        sid = ids.get(subset)
        if sid is None:
            sid = result.add_state(
                namer(subset), accepting=bool(subset & aut.accepting)
            )
            ids[subset] = sid
            queue.append(subset)
        return sid

    queue: list[frozenset[int]] = []
    subset_id(first)
    while queue:
        subset = queue.pop(0)
        src = ids[subset]
        merged: dict[int, int] = {}
        for member in subset:
            for dst, label in aut.edges[member].items():
                merged[dst] = mgr.apply_or(merged.get(dst, FALSE), label)
        for dests, region in split_regions(mgr, sorted(merged.items())):
            result.add_edge(src, subset_id(dests), region)
    return result


def product(a: Automaton, b: Automaton) -> Automaton:
    """Synchronous product over the union of the two alphabets.

    Both automata must share a manager.  Labels are conjoined; since a
    label not mentioning a variable is independent of it, automata over
    different supports compose exactly as in the paper ("having the same
    support simply means that each function is considered as a function
    of the full set of variables").  A product state is accepting iff
    both components are accepting.
    """
    if a.manager is not b.manager:
        raise AutomatonError("product requires a shared BDD manager")
    mgr = a.manager
    union_vars = tuple(
        sorted(set(a.variables) | set(b.variables), key=mgr.var_index)
    )
    if a.initial is None or b.initial is None:
        return empty_automaton(mgr, union_vars)
    result = Automaton(mgr, union_vars)
    ids: dict[tuple[int, int], int] = {}
    queue: list[tuple[int, int]] = []

    def pair_id(pair: tuple[int, int]) -> int:
        sid = ids.get(pair)
        if sid is None:
            sa, sb = pair
            sid = result.add_state(
                f"({a.state_names[sa]},{b.state_names[sb]})",
                accepting=sa in a.accepting and sb in b.accepting,
            )
            ids[pair] = sid
            queue.append(pair)
        return sid

    pair_id((a.initial, b.initial))
    while queue:
        pair = queue.pop(0)
        sa, sb = pair
        src = ids[pair]
        for da, la in a.edges[sa].items():
            for db, lb in b.edges[sb].items():
                cond = mgr.apply_and(la, lb)
                if cond != FALSE:
                    result.add_edge(src, pair_id((da, db)), cond)
    return result


def support(aut: Automaton, new_variables: Sequence[str]) -> Automaton:
    """Change the alphabet to ``new_variables`` (paper's ``Support``).

    Variables added (expansion) leave labels untouched — the automaton
    does not constrain them.  Variables removed (restriction / "hiding")
    are existentially quantified out of every label, which may make the
    result non-deterministic.
    """
    mgr = aut.manager
    new_tuple = tuple(new_variables)
    for name in new_tuple:
        if not mgr.has_var(name):
            raise AutomatonError(f"support variable {name!r} not declared")
    hidden = [mgr.var_index(v) for v in aut.variables if v not in new_tuple]
    result = Automaton(mgr, new_tuple)
    result.state_names = list(aut.state_names)
    result.accepting = set(aut.accepting)
    result.initial = aut.initial
    result.edges = [dict() for _ in aut.state_names]
    for sid, bucket in enumerate(aut.edges):
        for dst, label in bucket.items():
            result.add_edge(sid, dst, mgr.exists(label, hidden) if hidden else label)
    return result


def prefix_close(aut: Automaton) -> Automaton:
    """Largest prefix-closed sub-automaton: drop non-accepting states.

    All surviving states are accepting; the result is trimmed to the
    reachable part.  If the initial state is non-accepting the language
    is empty.
    """
    if aut.initial is None or aut.initial not in aut.accepting:
        return empty_automaton(aut.manager, aut.variables)
    result = Automaton(aut.manager, aut.variables)
    keep = sorted(aut.accepting)
    remap = {old: new for new, old in enumerate(keep)}
    for old in keep:
        result.add_state(aut.state_names[old], accepting=True)
    result.initial = remap[aut.initial]
    for old in keep:
        for dst, label in aut.edges[old].items():
            if dst in remap:
                result.add_edge(remap[old], remap[dst], label)
    return result.trim()


def progressive(aut: Automaton, input_variables: Sequence[str]) -> Automaton:
    """Largest input-progressive sub-automaton (paper's ``Progressive``).

    Recursively removes states that do not have, for *every* assignment
    of the input variables ``u``, at least one outgoing transition (to a
    surviving state).  This is the step that turns the most general
    prefix-closed solution into the CSF, i.e. an implementable FSM.
    """
    mgr = aut.manager
    unknown = set(input_variables) - set(aut.variables)
    if unknown:
        raise AutomatonError(f"input variables not in alphabet: {sorted(unknown)}")
    if aut.initial is None:
        return empty_automaton(aut.manager, aut.variables)
    other = [
        mgr.var_index(v) for v in aut.variables if v not in set(input_variables)
    ]
    alive = set(range(aut.num_states))
    changed = True
    while changed:
        changed = False
        for sid in sorted(alive):
            defined = FALSE
            for dst, label in aut.edges[sid].items():
                if dst in alive:
                    defined = mgr.apply_or(defined, label)
                    if defined == TRUE:
                        break
            u_defined = mgr.exists(defined, other) if other else defined
            if u_defined != TRUE:
                alive.remove(sid)
                changed = True
        if aut.initial not in alive:
            return empty_automaton(aut.manager, aut.variables)
    result = Automaton(aut.manager, aut.variables)
    keep = sorted(alive)
    remap = {old: new for new, old in enumerate(keep)}
    for old in keep:
        result.add_state(aut.state_names[old], accepting=old in aut.accepting)
    result.initial = remap[aut.initial]
    for old in keep:
        for dst, label in aut.edges[old].items():
            if dst in remap:
                result.add_edge(remap[old], remap[dst], label)
    return result.trim()


def union(a: Automaton, b: Automaton) -> Automaton:
    """Language union (NFA construction).

    Disjoint union of the two state sets plus a fresh initial state that
    copies the outgoing edges of both originals (accepting iff either
    original initial state is accepting).  Both automata must share a
    manager and alphabet.  The result is non-deterministic in general.
    """
    if a.manager is not b.manager:
        raise AutomatonError("union requires a shared BDD manager")
    if set(a.variables) != set(b.variables):
        raise AutomatonError(f"alphabet mismatch: {a.variables} vs {b.variables}")
    result = Automaton(a.manager, a.variables)
    both_empty = a.initial is None and b.initial is None
    fresh = result.add_state(
        "init",
        accepting=(a.initial is not None and a.initial in a.accepting)
        or (b.initial is not None and b.initial in b.accepting),
    )
    offset_a = result.num_states
    for sid in range(a.num_states):
        result.add_state(f"a.{a.state_names[sid]}", accepting=sid in a.accepting)
    offset_b = result.num_states
    for sid in range(b.num_states):
        result.add_state(f"b.{b.state_names[sid]}", accepting=sid in b.accepting)
    for src, bucket in enumerate(a.edges):
        for dst, label in bucket.items():
            result.add_edge(offset_a + src, offset_a + dst, label)
    for src, bucket in enumerate(b.edges):
        for dst, label in bucket.items():
            result.add_edge(offset_b + src, offset_b + dst, label)
    if a.initial is not None:
        for dst, label in a.edges[a.initial].items():
            result.add_edge(fresh, offset_a + dst, label)
    if b.initial is not None:
        for dst, label in b.edges[b.initial].items():
            result.add_edge(fresh, offset_b + dst, label)
    result.initial = fresh
    if both_empty:
        result.accepting.discard(fresh)
    return result.trim()


def minimize(aut: Automaton) -> Automaton:
    """Bisimulation quotient (Moore partition refinement).

    For deterministic complete automata this is the minimal DFA; for
    non-deterministic automata it is a (language-preserving) bisimulation
    quotient.  States are merged when they have the same acceptance and,
    for every block, the same condition of moving into that block.
    """
    if aut.initial is None:
        return empty_automaton(aut.manager, aut.variables)
    trimmed = aut.trim()
    mgr = trimmed.manager
    block: list[int] = [
        1 if sid in trimmed.accepting else 0 for sid in range(trimmed.num_states)
    ]
    while True:
        signatures: dict[tuple, int] = {}
        new_block: list[int] = [0] * trimmed.num_states
        for sid in range(trimmed.num_states):
            per_block: dict[int, int] = {}
            for dst, label in trimmed.edges[sid].items():
                b = block[dst]
                per_block[b] = mgr.apply_or(per_block.get(b, FALSE), label)
            signature = (block[sid], tuple(sorted(per_block.items())))
            new_block[sid] = signatures.setdefault(signature, len(signatures))
        if new_block == block:
            break
        block = new_block
    count = max(block) + 1
    result = Automaton(trimmed.manager, trimmed.variables)
    representatives: dict[int, int] = {}
    for sid in range(trimmed.num_states):
        representatives.setdefault(block[sid], sid)
    for b in range(count):
        rep = representatives[b]
        result.add_state(trimmed.state_names[rep], accepting=rep in trimmed.accepting)
    result.initial = block[trimmed.initial]  # type: ignore[index]
    for sid in range(trimmed.num_states):
        for dst, label in trimmed.edges[sid].items():
            result.add_edge(block[sid], block[dst], label)
    return result
