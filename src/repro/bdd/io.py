"""Export and (de)serialisation of BDDs.

* :func:`to_dot` renders one or more functions as a Graphviz digraph
  (solid = then-edge, dashed = else-edge), handy for debugging and docs.
  Complement edges are rendered expanded: both polarities of a shared
  node appear as separate graph vertices, so the drawing always shows the
  plain (complement-free) ROBDD of each root.
* :func:`dump_function` / :func:`load_function` round-trip a function
  through a plain JSON-able structure, used by the test suite and by the
  CLI's ``--save`` option.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.bdd.manager import FALSE, TRUE, BddManager
from repro.errors import BddError


def to_dot(
    mgr: BddManager,
    roots: Mapping[str, int] | Sequence[int],
    *,
    graph_name: str = "bdd",
) -> str:
    """Render the shared DAG of ``roots`` in Graphviz dot format."""
    if isinstance(roots, Mapping):
        named = dict(roots)
    else:
        named = {f"f{i}": node for i, node in enumerate(roots)}
    lines = [f"digraph {graph_name} {{", "  rankdir=TB;"]
    lines.append('  node0 [label="0", shape=box];')
    lines.append('  node1 [label="1", shape=box];')
    seen: set[int] = set()
    stack = list(named.values())
    while stack:
        node = stack.pop()
        if node < 2 or node in seen:
            continue
        seen.add(node)
        name = mgr.var_name(mgr.node_var(node))
        lines.append(f'  node{node} [label="{name}", shape=circle];')
        lo, hi = mgr.node_lo(node), mgr.node_hi(node)
        lines.append(f"  node{node} -> node{lo} [style=dashed];")
        lines.append(f"  node{node} -> node{hi} [style=solid];")
        stack.append(lo)
        stack.append(hi)
    for label, node in sorted(named.items()):
        lines.append(f'  root_{label} [label="{label}", shape=plaintext];')
        lines.append(f"  root_{label} -> node{node};")
    lines.append("}")
    return "\n".join(lines)


def dump_function(mgr: BddManager, f: int) -> dict:
    """Serialise ``f`` into a JSON-able dict.

    Nodes are listed children-first as ``[var_name, lo_ref, hi_ref]``
    where refs are ``"F"``, ``"T"`` or an index into the node list.
    """
    order: list[int] = []
    seen: set[int] = set()

    def visit(node: int) -> None:
        if node < 2 or node in seen:
            return
        seen.add(node)
        visit(mgr.node_lo(node))
        visit(mgr.node_hi(node))
        order.append(node)

    visit(f)
    index = {FALSE: "F", TRUE: "T"}
    nodes = []
    for pos, node in enumerate(order):
        index[node] = pos
        nodes.append(
            [
                mgr.var_name(mgr.node_var(node)),
                index[mgr.node_lo(node)],
                index[mgr.node_hi(node)],
            ]
        )
    return {"nodes": nodes, "root": index[f]}


def load_function(mgr: BddManager, data: dict) -> int:
    """Rebuild a function serialised by :func:`dump_function`.

    Variables are matched by name and must already exist in ``mgr``
    (declared on demand otherwise).
    """
    built: list[int] = []

    def ref(token: object) -> int:
        if token == "F":
            return FALSE
        if token == "T":
            return TRUE
        if isinstance(token, int):
            return built[token]
        raise BddError(f"malformed BDD dump reference: {token!r}")

    for name, lo_ref, hi_ref in data["nodes"]:
        try:
            var = mgr.var_index(name)
        except KeyError:
            var = mgr.add_var(name)
        lo, hi = ref(lo_ref), ref(hi_ref)
        built.append(mgr.ite(mgr.var_node(var), hi, lo))
    return ref(data["root"])
