"""Tests for network construction, validation, evaluation and simulation."""

from __future__ import annotations

import pytest

from repro.bench import circuits, figure3_network, s27
from repro.errors import NetworkError
from repro.expr.ast import And, Not, Var
from repro.network import Network, flatten_expr


class TestConstruction:
    def test_duplicate_driver_rejected(self) -> None:
        net = Network()
        net.add_input("a")
        with pytest.raises(NetworkError):
            net.add_node("a", Var("a"))

    def test_duplicate_output_rejected(self) -> None:
        net = Network()
        net.add_input("a")
        net.add_output("a")
        with pytest.raises(NetworkError):
            net.add_output("a")

    def test_undriven_output_rejected(self) -> None:
        net = Network()
        net.add_input("a")
        net.add_output("nope")
        with pytest.raises(NetworkError):
            net.validate()

    def test_undriven_latch_driver_rejected(self) -> None:
        net = Network()
        net.add_input("a")
        net.add_latch("q", "missing", 0)
        with pytest.raises(NetworkError):
            net.validate()

    def test_undriven_node_fanin_rejected(self) -> None:
        net = Network()
        net.add_node("g", Var("ghost"))
        with pytest.raises(NetworkError):
            net.validate()

    def test_combinational_cycle_rejected(self) -> None:
        net = Network()
        net.add_input("a")
        net.add_node("x", Var("y") & Var("a"))
        net.add_node("y", Var("x"))
        with pytest.raises(NetworkError, match="cycle"):
            net.validate()

    def test_latch_breaks_cycle(self) -> None:
        net = Network()
        net.add_input("a")
        net.add_node("x", Var("q") & Var("a"))
        net.add_latch("q", "x", 0)
        net.validate()

    def test_bad_init_rejected(self) -> None:
        net = Network()
        with pytest.raises(NetworkError):
            net.add_latch("q", "d", 2)

    def test_stats_string(self) -> None:
        assert s27().stats() == "4/1/3"
        assert figure3_network().stats() == "1/1/2"

    def test_add_node_parses_strings(self) -> None:
        net = Network()
        net.add_input("a")
        net.add_input("b")
        net.add_node("f", "a & !b")
        net.add_output("f")
        net.validate()
        outs, _ = net.step({}, {"a": 1, "b": 0})
        assert outs == {"f": 1}


class TestEvaluation:
    def test_figure3_next_state_functions(self) -> None:
        net = figure3_network()
        # From state 00 under i=0 the paper says next is 01, output 0.
        outs, ns = net.step({"cs1": 0, "cs2": 0}, {"i": 0})
        assert outs == {"o": 0}
        assert ns == {"cs1": 0, "cs2": 1}

    def test_figure3_transition_table(self) -> None:
        net = figure3_network()
        # (state, input) -> (output, next_state)
        table = {
            ((0, 0), 0): (0, (0, 1)),
            ((0, 0), 1): (0, (0, 0)),
            ((0, 1), 0): (1, (0, 1)),
            ((0, 1), 1): (1, (1, 0)),
            ((1, 0), 0): (1, (0, 1)),
            ((1, 0), 1): (1, (0, 1)),
        }
        for (cs, i), (o, ns) in table.items():
            outs, nxt = net.step({"cs1": cs[0], "cs2": cs[1]}, {"i": i})
            assert outs["o"] == o, (cs, i)
            assert (nxt["cs1"], nxt["cs2"]) == ns, (cs, i)

    def test_counter_counts(self) -> None:
        net = circuits.counter(3)
        state = net.initial_state()
        seen = []
        for _ in range(9):
            value = state["b0"] + 2 * state["b1"] + 4 * state["b2"]
            seen.append(value)
            _, state = net.step(state, {"en": 1})
        assert seen == [0, 1, 2, 3, 4, 5, 6, 7, 0]

    def test_counter_holds_without_enable(self) -> None:
        net = circuits.counter(3)
        _, state = net.step(net.initial_state(), {"en": 1})
        _, held = net.step(state, {"en": 0})
        assert held == state

    def test_counter_terminal_count(self) -> None:
        net = circuits.counter(2)
        outs, _ = net.step({"b0": 1, "b1": 1}, {"en": 1})
        assert outs["tc"] == 1
        outs, _ = net.step({"b0": 1, "b1": 0}, {"en": 1})
        assert outs["tc"] == 0

    def test_shift_register_delays(self) -> None:
        net = circuits.shift_register(3)
        stream = [1, 0, 1, 1, 0, 0, 1]
        trace = net.simulate([{"d": b} for b in stream])
        got = [t["q"] for t in trace]
        assert got == [0, 0, 0, 1, 0, 1, 1]  # three-cycle delay

    def test_sequence_detector_hits(self) -> None:
        net = circuits.sequence_detector("101")
        stream = [1, 0, 1, 0, 1, 1, 0, 1]
        trace = net.simulate([{"x": b} for b in stream])
        hits = [t["hit"] for t in trace]
        assert hits == [0, 0, 1, 0, 1, 0, 0, 1]

    def test_johnson_cycle_length(self) -> None:
        net = circuits.johnson(3)
        state = net.initial_state()
        states = [tuple(state.values())]
        for _ in range(6):
            _, state = net.step(state, {"en": 1})
            states.append(tuple(state.values()))
        assert states[0] == states[-1]
        assert len(set(states[:-1])) == 6  # 2n distinct states

    def test_traffic_light_sequence(self) -> None:
        net = circuits.traffic_light()
        state = net.initial_state()
        outs, _ = net.step(state, {"car": 0})
        assert outs == {"green_major": 1, "green_minor": 0}
        # car arrives: 00 -> 01 -> 11 (minor green)
        _, state = net.step(state, {"car": 1})
        _, state = net.step(state, {"car": 1})
        outs, _ = net.step(state, {"car": 1})
        assert outs == {"green_major": 0, "green_minor": 1}

    def test_token_arbiter_grants_holder_only(self) -> None:
        net = circuits.token_arbiter(3)
        outs, state = net.step(net.initial_state(), {"req0": 1, "req1": 1, "req2": 0})
        assert (outs["gnt0"], outs["gnt1"], outs["gnt2"]) == (1, 0, 0)
        assert state == net.initial_state()  # holder requesting: token held
        # Holder idle: token advances.
        outs, state = net.step(net.initial_state(), {"req0": 0, "req1": 1, "req2": 0})
        assert state == {"t0": 0, "t1": 1, "t2": 0}

    def test_random_network_is_deterministic(self) -> None:
        n1 = circuits.random_network(2, 3, 2, seed=7)
        n2 = circuits.random_network(2, 3, 2, seed=7)
        n3 = circuits.random_network(2, 3, 2, seed=8)
        inputs = [{"x0": (k >> 1) & 1, "x1": k & 1} for k in range(8)]
        assert n1.simulate(inputs) == n2.simulate(inputs)
        assert n1.stats() == "2/2/3"
        assert n3.simulate(inputs) != n1.simulate(inputs) or True  # just runs

    def test_s27_simulates(self) -> None:
        net = s27()
        trace = net.simulate(
            [{"G0": 0, "G1": 0, "G2": 0, "G3": 0}, {"G0": 1, "G1": 1, "G2": 1, "G3": 1}]
        )
        assert all(set(t) == {"G17"} for t in trace)


class TestSurgeryHelpers:
    def test_flatten_expr_stops_at_sources(self) -> None:
        net = figure3_network()
        flat = flatten_expr(net, "n1", ["i", "cs1", "cs2"])
        assert flat.variables() == {"i", "cs2"}
        assert flat.evaluate({"i": 1, "cs2": 1}) is True
        assert flat.evaluate({"i": 1, "cs2": 0}) is False

    def test_flatten_expr_multilevel(self) -> None:
        net = Network()
        net.add_input("a")
        net.add_input("b")
        net.add_node("g1", And((Var("a"), Var("b"))))
        net.add_node("g2", Not(Var("g1")))
        net.add_node("g3", And((Var("g2"), Var("a"))))
        flat = flatten_expr(net, "g3", ["a", "b"])
        for a in (0, 1):
            for b in (0, 1):
                want = (not (a and b)) and bool(a)
                assert flat.evaluate({"a": a, "b": b}) == want

    def test_copy_is_independent(self) -> None:
        net = figure3_network()
        dup = net.copy()
        dup.add_input("extra")
        assert "extra" not in net.inputs

    def test_rename_signals(self) -> None:
        net = figure3_network()
        renamed = net.rename_signals({"i": "inp", "o": "out"})
        renamed.validate()
        outs, _ = renamed.step({"cs1": 0, "cs2": 1}, {"inp": 0})
        assert outs == {"out": 1}

    def test_node_function(self) -> None:
        net = figure3_network()
        assert net.node_function("i") == Var("i")
        assert isinstance(net.node_function("n1"), And)
        with pytest.raises(NetworkError):
            net.node_function("ghost")
