"""Garbage collection and variable reordering for the BDD manager.

Pure-Python managers cannot afford CUDD-style in-place sifting, so this
module provides the two operations that matter at our scale:

* :func:`compact` — mark-and-sweep garbage collection that rebuilds the
  node arrays keeping only nodes reachable from the given roots, and
  returns an old-id -> new-id mapping for the caller's live references;
* :func:`transfer` / :func:`reorder` — copy functions into another
  manager (possibly with a different variable order), which doubles as a
  rebuild-based reordering primitive.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.bdd.manager import FALSE, TRUE, BddManager
from repro.errors import BddError


def compact(mgr: BddManager, roots: Iterable[int]) -> dict[int, int]:
    """Garbage-collect ``mgr`` keeping only nodes reachable from ``roots``.

    Unlike :meth:`~repro.bdd.manager.BddManager.collect_garbage` (which
    keeps surviving ids stable and recycles freed slots), this rebuilds the
    node arrays densely: edges are renumbered, the free list is dropped and
    external reference counts are reset.  The returned dict maps every old
    live edge (including the terminals and both polarities) to its new
    edge; callers must remap any edges they hold.  The computed table is
    cleared.
    """
    # Collect reachable nodes (as regular/even edges), children before
    # parents.
    order: list[int] = []
    seen: set[int] = set()
    stack: list[tuple[int, bool]] = [(r & -2, False) for r in roots]
    while stack:
        n, emit = stack.pop()
        if emit:
            order.append(n)
            continue
        if n == 0 or n in seen:
            continue
        seen.add(n)
        stack.append((n, True))
        stack.append((mgr._lo[n] & -2, False))
        stack.append((mgr._hi[n] & -2, False))

    new_var: list[int] = [-1, -1]
    new_lo: list[int] = [0, 1]
    new_hi: list[int] = [0, 1]
    new_unique: dict[tuple[int, int, int], int] = {}
    edge_map: dict[int, int] = {0: 0}
    for n in order:
        var = mgr._var[n]
        old_lo, old_hi = mgr._lo[n], mgr._hi[n]
        lo = edge_map[old_lo & -2] | (old_lo & 1)
        hi = edge_map[old_hi & -2] | (old_hi & 1)
        new_edge = len(new_var)
        new_var += (var, var)
        new_lo += (lo, lo ^ 1)
        new_hi += (hi, hi ^ 1)
        new_unique[(var, lo, hi)] = new_edge
        edge_map[n] = new_edge

    mgr._peak_live = max(mgr._peak_live, mgr._live)
    # In-place updates: the manager's hot closures capture these containers
    # (see BddManager._bind_hot_ops), so they must never be rebound.
    mgr._var[:] = new_var
    mgr._lo[:] = new_lo
    mgr._hi[:] = new_hi
    mgr._unique.clear()
    mgr._unique.update(new_unique)
    mgr._free.clear()
    mgr._extref.clear()
    mgr._live = 1 + len(order)
    mgr._gc_baseline = mgr._live
    mgr.clear_caches()
    mapping: dict[int, int] = {}
    for old, new in edge_map.items():
        mapping[old] = new
        mapping[old | 1] = new | 1
    return mapping


def transfer(
    f: int,
    src: BddManager,
    dst: BddManager,
    name_map: dict[str, str] | None = None,
) -> int:
    """Copy function ``f`` from manager ``src`` into manager ``dst``.

    Variables are matched by name (optionally renamed through
    ``name_map``); they must already be declared in ``dst``.  The copy is
    order-safe: it recombines children with ITE, so the destination order
    may differ arbitrarily from the source order.
    """
    memo: dict[int, int] = {FALSE: FALSE, TRUE: TRUE}

    def rec(node: int) -> int:
        cached = memo.get(node)
        if cached is not None:
            return cached
        name = src.var_name(src.node_var(node))
        if name_map is not None:
            name = name_map.get(name, name)
        try:
            var = dst.var_index(name)
        except KeyError:
            raise BddError(f"transfer: variable {name!r} not declared in destination")
        lo = rec(src.node_lo(node))
        hi = rec(src.node_hi(node))
        result = dst.ite(dst.var_node(var), hi, lo)
        memo[node] = result
        return result

    return rec(f)


def reorder(
    mgr: BddManager,
    new_order: Sequence[str],
    roots: Sequence[int],
) -> tuple[BddManager, list[int]]:
    """Rebuild ``roots`` in a fresh manager with variable order ``new_order``.

    Returns the new manager and the transferred roots.  ``new_order`` must
    list every variable of ``mgr`` exactly once (top to bottom).
    """
    if sorted(new_order) != sorted(mgr.var_order()):
        raise BddError("reorder must mention every declared variable once")
    fresh = BddManager(
        max_nodes=mgr.max_nodes,
        gc_min_live=mgr.gc_min_live,
        gc_growth=mgr.gc_growth,
    )
    fresh.add_vars(new_order)
    new_roots = [transfer(f, mgr, fresh) for f in roots]
    return fresh, new_roots


def greedy_sift_order(
    mgr: BddManager,
    roots: Sequence[int],
    *,
    max_passes: int = 1,
) -> list[str]:
    """Search for a better variable order by rebuild-based sifting.

    A lightweight stand-in for CUDD's dynamic reordering: each variable in
    turn is tried at every position (by rebuilding the roots in a scratch
    manager) and left at the position minimising the shared node count.
    Quadratic in the number of variables and linear in BDD size per trial,
    so intended for modest managers; returns the best order found.
    """
    order = mgr.var_order()
    if not roots or len(order) < 3:
        return order

    def cost(candidate: Sequence[str]) -> int:
        scratch = BddManager()
        scratch.add_vars(candidate)
        copies = [transfer(f, mgr, scratch) for f in roots]
        return scratch.size_many(copies)

    best_cost = cost(order)
    for _ in range(max_passes):
        improved = False
        for name in list(order):
            base = [n for n in order if n != name]
            for pos in range(len(order)):
                candidate = base[:pos] + [name] + base[pos:]
                if candidate == order:
                    continue
                c = cost(candidate)
                if c < best_cost:
                    best_cost = c
                    order = candidate
                    improved = True
        if not improved:
            break
    return order
