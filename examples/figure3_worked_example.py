#!/usr/bin/env python
"""The paper's Figure 3, reproduced end to end.

Figure 3 of the paper shows a tiny sequential circuit (1 input, 1
output, 2 latches with T1 = i & cs2, T2 = !i | cs1, o = cs1 XOR cs2) and
its automaton: reachable states 00, 01, 10, plus the shaded DC state
added by completion.  This example rebuilds the circuit, extracts the
automaton, prints every arc (in the figure's "io" labelling), completes
it, and finally solves the latch-split language equation on it.

Run:  python examples/figure3_worked_example.py
"""

import sys
from pathlib import Path

try:  # src layout: let `python examples/<name>.py` run without installing
    import repro  # noqa: F401
except ImportError:
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bdd import iter_cubes
from repro.bench import figure3_network
from repro.automata import automaton_to_dot, complete, network_to_automaton
from repro.eqn import solve_latch_split, verify_solution


def print_automaton(aut, title: str) -> None:
    print(f"--- {title} ---")
    mgr = aut.manager
    for sid, name in enumerate(aut.state_names):
        marker = "(accepting)" if sid in aut.accepting else "(DC)"
        init = "-> " if sid == aut.initial else "   "
        print(f"{init}state {name} {marker}")
        for dst, label in aut.edges[sid].items():
            for cube in iter_cubes(mgr, label):
                bits = "".join(
                    "-" if cube.get(mgr.var_index(v)) is None else str(cube[mgr.var_index(v)])
                    for v in aut.variables
                )
                print(f"      --{bits}--> {aut.state_names[dst]}")


def main() -> None:
    net = figure3_network()
    print(f"Figure 3 circuit: {net.stats()} (inputs i; outputs o; latches cs1, cs2)")

    # The incomplete automaton: states 00, 01, 10 as in the figure.
    aut = network_to_automaton(net)
    print_automaton(aut, "automaton (labels are 'io', as in the figure)")

    # Completion: "the transition from (00) under input (11) is not
    # defined ... all transitions that were originally undefined are
    # directed to DC" — the shaded state.
    completed = complete(aut)
    print_automaton(completed, "completed automaton (with the DC state)")

    # Graphviz output for the figure.
    dot = automaton_to_dot(completed, graph_name="figure3")
    print(f"(dot output: {len(dot.splitlines())} lines; render with graphviz)")

    # And the equation: take cs1 as the unknown component.
    result = solve_latch_split(net, ["cs1"])
    print(f"\nCSF of latch cs1: {result.csf_states} states "
          f"({result.method} flow, {result.seconds:.3f}s)")
    report = verify_solution(result)
    print(f"verification: {report.summary()}")
    assert report.ok


if __name__ == "__main__":
    main()
