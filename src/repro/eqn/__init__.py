"""Language-equation solving: the paper's core contribution.

Public surface:

* :func:`solve_latch_split` / :func:`solve_equation` — one-call solvers
  (partitioned / monolithic / explicit flows).
* :class:`EquationProblem` / :func:`build_problem` — problem instances.
* :func:`verify_solution` — the paper's formal checks.
* :func:`extract_csf` — prefix-closed input-progressive trimming.
"""

from repro.eqn.compose import (
    ComposePlan,
    conjoin_solutions,
    plan_components,
    solve_compositional,
)
from repro.eqn.csf import csf_state_count, extract_csf
from repro.eqn.implement import (
    Implementation,
    extract_fsm,
    fsm_to_network,
    implement_csf,
    recompose_with_implementation,
)
from repro.eqn.explicit_solver import (
    fixed_automaton,
    solve_explicit,
    specification_automaton,
)
from repro.eqn.monolithic import MonolithicOracle
from repro.eqn.partitioned import PartitionedOracle
from repro.eqn.problem import (
    EquationProblem,
    build_latch_split_problem,
    build_problem,
)
from repro.eqn.residency import ResidencyManager, SpillStore
from repro.eqn.solver import (
    METHODS,
    SolveResult,
    solve_equation,
    solve_latch_split,
)
from repro.eqn.subset import (
    STRATEGIES,
    FrontierScheduler,
    SubsetEdge,
    SubsetStats,
    subset_construct,
)
from repro.eqn.verify import (
    VerificationReport,
    compose_with_fixed,
    particular_solution_automaton,
    verify_solution,
)

__all__ = [
    "ComposePlan",
    "EquationProblem",
    "FrontierScheduler",
    "Implementation",
    "METHODS",
    "STRATEGIES",
    "MonolithicOracle",
    "PartitionedOracle",
    "ResidencyManager",
    "SolveResult",
    "SpillStore",
    "SubsetEdge",
    "SubsetStats",
    "VerificationReport",
    "build_latch_split_problem",
    "build_problem",
    "compose_with_fixed",
    "conjoin_solutions",
    "csf_state_count",
    "extract_csf",
    "extract_fsm",
    "fixed_automaton",
    "fsm_to_network",
    "implement_csf",
    "particular_solution_automaton",
    "plan_components",
    "recompose_with_implementation",
    "solve_compositional",
    "solve_equation",
    "solve_explicit",
    "solve_latch_split",
    "specification_automaton",
    "subset_construct",
    "verify_solution",
]
