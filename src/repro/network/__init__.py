"""Sequential network substrate: netlists, BLIF, simulation, surgery."""

from repro.network.bddbuild import NetworkBdds, build_network_bdds, declare_network_vars
from repro.network.blif import parse_blif, read_blif, save_blif, write_blif
from repro.network.netlist import Latch, Network, Node, flatten_expr
from repro.network.transform import (
    LatchSplit,
    compose_networks,
    cone_of,
    latch_split,
    prune_dangling,
    recompose,
    u_wire,
    v_wire,
)

__all__ = [
    "Latch",
    "LatchSplit",
    "Network",
    "NetworkBdds",
    "Node",
    "build_network_bdds",
    "compose_networks",
    "cone_of",
    "declare_network_vars",
    "flatten_expr",
    "latch_split",
    "parse_blif",
    "prune_dangling",
    "read_blif",
    "recompose",
    "save_blif",
    "u_wire",
    "v_wire",
    "write_blif",
]
