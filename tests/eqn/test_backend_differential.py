"""Solver-level backend differential: every backend, identical bytes.

Two layers:

* **Always-on** — the ``backend`` knob threaded through
  :func:`~repro.eqn.solver.solve_latch_split` with the default backend
  must be a byte-level no-op: same KISS text, same subset/edge counts,
  same CSF state count as a solve that never mentions backends.  This
  pins the pre-backend behaviour bit-for-bit on pure-Python machines.

* **Native, conditionally defined** — when the BuDDy library loads,
  the Table 1 suite is solved once per backend and compared byte for
  byte.  The tests are *defined* only in that case (module-level
  guard), not skip-marked: a pure-Python environment collects zero
  extra tests and zero extra skips.
"""

from __future__ import annotations

import pytest

from repro.automata.kiss import write_kiss
from repro.bdd.backends import backend_available
from repro.bench.suite import TABLE1_CASES, case_by_name
from repro.eqn.solver import solve_latch_split
from repro.util.limits import ResourceLimit

#: Small, fast Table 1 rows for the always-on identity check.
FAST_CASES = ("s27", "count6", "johnson8")


def _solve(case, backend: str | None):
    kwargs = {} if backend is None else {"backend": backend}
    limit = ResourceLimit(
        max_seconds=case.max_seconds, max_nodes=case.max_nodes
    )
    return solve_latch_split(
        case.network(), list(case.x_latches), limit=limit, **kwargs
    )


def _fingerprint(result) -> dict:
    return {
        "kiss": write_kiss(result.csf),
        "csf_states": result.csf_states,
        "subsets": result.stats.subsets,
        "edges": result.stats.edges,
    }


@pytest.mark.parametrize("name", FAST_CASES)
def test_explicit_python_backend_is_byte_identical(name) -> None:
    case = case_by_name(name)
    base = _fingerprint(_solve(case, None))
    threaded = _fingerprint(_solve(case, "python"))
    assert threaded == base


if backend_available("buddy"):

    @pytest.mark.parametrize(
        "name", [case.name for case in TABLE1_CASES]
    )
    def test_buddy_solves_table1_byte_identically(name) -> None:
        case = case_by_name(name)
        reference = _fingerprint(_solve(case, "python"))
        native = _fingerprint(_solve(case, "buddy"))
        assert native == reference
