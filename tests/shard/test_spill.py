"""Bounded-memory residency: spill → evict → GC → sift → reload.

Three layers of the same contract:

* the packed single-function blob (:mod:`repro.bdd.io`) is canonical
  per (function, variable order) and round-trips bit-for-bit;
* the coordinator policy (:class:`repro.eqn.residency.ResidencyManager`)
  and the worker registry (:mod:`repro.shard.worker`) both survive the
  full hostile sequence — spill, drop the pin, collect garbage, sift
  the order in place, reload — and hand back the *same function*;
* a budgeted solve is result-identical to the unbounded one: the spill
  machinery may only change when nodes are materialized, never what the
  solver computes (byte-identical KISS over the Table 1 suite).
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.automata.kiss import write_kiss
from repro.bdd import BddManager, load_nodes
from repro.bdd.io import FUNCTION_MAGIC, dump_function_packed, load_function_packed
from repro.bench import circuits
from repro.bench.suite import TABLE1_CASES
from repro.eqn.problem import build_latch_split_problem
from repro.eqn.residency import ResidencyManager, SpillStore, content_key
from repro.eqn.solver import solve_equation
from repro.errors import BddError, EquationError
from repro.shard import ShardPool

from tests.strategies import DEFAULT_VARS, bdd_minterms, expressions

VARS = list(DEFAULT_VARS)


@pytest.fixture()
def mgr():
    m = BddManager()
    m.add_vars(VARS)
    return m


def _build(mgr, expr):
    return expr.to_bdd(mgr)


# --------------------------------------------------------------------- #
# The packed single-function blob
# --------------------------------------------------------------------- #


class TestPackedFunction:
    def test_round_trip_same_manager(self, mgr) -> None:
        a, b, c = (mgr.var_node(mgr.var_index(v)) for v in "abc")
        f = mgr.apply_or(mgr.apply_and(a, b), mgr.apply_not(c))
        blob = dump_function_packed(mgr, f)
        assert blob.startswith(FUNCTION_MAGIC)
        assert load_function_packed(mgr, blob) == f

    def test_round_trip_fresh_manager_other_order(self, mgr) -> None:
        a, b = mgr.var_node(mgr.var_index("a")), mgr.var_node(mgr.var_index("b"))
        f = mgr.apply_xor(a, b)
        blob = dump_function_packed(mgr, f)
        other = BddManager()
        other.add_vars(list(reversed(VARS)))  # names travel, indices don't
        g = load_function_packed(other, blob)
        assert bdd_minterms(other, g, VARS) == bdd_minterms(mgr, f, VARS)

    def test_blob_is_canonical_per_function(self, mgr) -> None:
        a, b = mgr.var_node(mgr.var_index("a")), mgr.var_node(mgr.var_index("b"))
        via_or = mgr.apply_not(mgr.apply_or(mgr.apply_not(a), mgr.apply_not(b)))
        via_and = mgr.apply_and(a, b)
        assert via_or == via_and  # canonicity of the kernel...
        assert dump_function_packed(mgr, via_or) == dump_function_packed(
            mgr, via_and
        )  # ...carries over to the blob

    def test_terminals_round_trip(self, mgr) -> None:
        for terminal in (0, 1):
            blob = dump_function_packed(mgr, terminal)
            assert load_function_packed(mgr, blob) == terminal

    def test_bad_magic_rejected(self, mgr) -> None:
        with pytest.raises(BddError):
            load_function_packed(mgr, b"not-a-packed-function\n")

    @settings(deadline=None, max_examples=30)
    @given(expr=expressions())
    def test_round_trip_random(self, expr) -> None:
        m = BddManager()
        m.add_vars(VARS)
        f = _build(m, expr)
        assert load_function_packed(m, dump_function_packed(m, f)) == f


# --------------------------------------------------------------------- #
# The content-addressed spill store
# --------------------------------------------------------------------- #


class TestSpillStore:
    def test_put_get_round_trip(self, tmp_path) -> None:
        store = SpillStore(str(tmp_path / "spill"))
        key, written = store.put(b"blob-one")
        assert written
        assert key in store
        assert store.get(key) == b"blob-one"

    def test_content_dedup(self, tmp_path) -> None:
        store = SpillStore(str(tmp_path / "spill"))
        key1, written1 = store.put(b"same")
        key2, written2 = store.put(b"same")
        assert (key1, written1) == (key2, True)
        assert written2 is False
        assert store.puts == 1
        assert store.dedup_hits == 1
        assert store.put_bytes == len(b"same")

    def test_shared_directory_between_stores(self, tmp_path) -> None:
        root = str(tmp_path / "shared")
        writer, reader = SpillStore(root), SpillStore(root)
        key, _ = writer.put(b"cross-process")
        assert reader.get(key) == b"cross-process"
        # Neither store owns a caller-provided directory.
        writer.close()
        assert reader.get(key) == b"cross-process"

    def test_owned_tempdir_removed_on_close(self) -> None:
        import os

        store = SpillStore()
        key, _ = store.put(b"ephemeral")
        root = store.root
        assert os.path.isdir(root)
        store.close()
        assert not os.path.exists(root)
        store.close()  # idempotent


# --------------------------------------------------------------------- #
# The coordinator-side LRU policy
# --------------------------------------------------------------------- #


class TestResidencyManager:
    def _admit_exprs(self, mgr, residency, exprs):
        """Admit + pin one ψ per expression; returns ``edge -> sid``."""
        admitted = {}
        for sid, expr in enumerate(exprs):
            f = _build(mgr, expr)
            if f in admitted:
                continue
            mgr.ref(f)
            residency.admit(f, sid)
            residency.mark_expanded(f)
            admitted[f] = sid
        return admitted

    def test_budget_rejects_nonpositive(self, mgr) -> None:
        with pytest.raises(EquationError):
            ResidencyManager(mgr, 0)

    def test_enforce_evicts_lru_first(self, mgr) -> None:
        residency = ResidencyManager(mgr, 2)
        a = mgr.var_node(mgr.var_index("a"))
        b = mgr.var_node(mgr.var_index("b"))
        c = mgr.var_node(mgr.var_index("c"))
        for sid, f in enumerate((a, b, c)):
            mgr.ref(f)
            residency.admit(f, sid)
            residency.mark_expanded(f)
        residency.touch(a)  # a is now the warmest expanded state
        evicted = residency.enforce()
        assert evicted  # over budget: three 1-node ψ against budget 2
        assert b in evicted and a not in evicted[:1]  # b was coldest
        for f in evicted:
            mgr.deref(f)
        assert residency.resident_nodes <= 2
        stats = residency.stats()
        assert stats["resident_evictions"] == len(evicted)
        assert stats["psi_spills"] == len(evicted)
        residency.close()

    def test_frontier_states_never_evicted(self, mgr) -> None:
        residency = ResidencyManager(mgr, 1)
        f = mgr.var_node(mgr.var_index("a"))
        mgr.ref(f)
        residency.admit(f, 0)  # admitted but never mark_expanded: frontier
        assert residency.enforce() == []
        residency.close()

    def test_lookup_dedups_against_evicted(self, mgr) -> None:
        residency = ResidencyManager(mgr, 1)
        a = mgr.var_node(mgr.var_index("a"))
        b = mgr.var_node(mgr.var_index("b"))
        for sid, f in enumerate((a, b)):
            mgr.ref(f)
            residency.admit(f, sid)
            residency.mark_expanded(f)
        evicted = residency.enforce()
        assert a in evicted
        assert residency.lookup(a) == 0  # rebuilt candidate, same content
        assert residency.lookup(mgr.apply_and(a, b)) is None
        for f in evicted:
            mgr.deref(f)
        residency.close()

    def test_restore_brings_back_identical_edges(self, mgr) -> None:
        residency = ResidencyManager(mgr, 1)
        exprs_edges = {}
        for sid, name in enumerate(VARS):
            f = mgr.var_node(mgr.var_index(name))
            mgr.ref(f)
            residency.admit(f, sid)
            residency.mark_expanded(f)
            exprs_edges[sid] = f
        for f in residency.enforce():
            mgr.deref(f)
        restored = dict((sid, psi) for psi, sid in residency.restore_all())
        assert restored  # something was actually evicted and reloaded
        for sid, psi in restored.items():
            assert psi == exprs_edges[sid]  # canonical ⇒ same edge
        assert residency.stats()["psi_reloads"] == len(restored)
        residency.close()

    @settings(
        deadline=None,
        max_examples=20,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(exprs=st.lists(expressions(max_leaves=8), min_size=2, max_size=8))
    def test_spill_gc_sift_reload_round_trip(self, exprs) -> None:
        """The full hostile sequence, against reference truth tables."""
        m = BddManager()
        m.add_vars(VARS)
        residency = ResidencyManager(m, 1)  # evict everything expanded
        admitted = self._admit_exprs(m, residency, exprs)
        tables = {sid: bdd_minterms(m, f, VARS) for f, sid in admitted.items()}
        evicted = residency.enforce()
        for f in evicted:
            m.deref(f)
        m.collect_garbage()
        m.sift_now()  # invalidates every stored content key's order
        restored = dict((sid, psi) for psi, sid in residency.restore_all())
        assert set(restored) == {admitted[f] for f in evicted}
        for sid, psi in restored.items():
            assert bdd_minterms(m, psi, VARS) == tables[sid]
        residency.close()

    def test_order_epoch_rehash_keeps_dedup_sound(self, mgr) -> None:
        residency = ResidencyManager(mgr, 1)
        a, b = mgr.var_node(mgr.var_index("a")), mgr.var_node(mgr.var_index("b"))
        f = mgr.apply_xor(a, b)
        mgr.ref(f)
        residency.admit(f, 7)
        residency.mark_expanded(f)
        for edge in residency.enforce():
            mgr.deref(edge)
        old_key, _ = content_key(mgr, mgr.apply_xor(a, b))
        mgr.collect_garbage()
        swapped = mgr.sift_now().swaps
        # Dedup must find the state under the *new* order's key.
        g = mgr.apply_xor(
            mgr.var_node(mgr.var_index("a")), mgr.var_node(mgr.var_index("b"))
        )
        assert residency.lookup(g) == 7
        if swapped:
            # The epoch changed, so the evicted entry was re-keyed (the
            # key *value* may coincide for symmetric functions).
            assert residency.stats()["spill_rehashes"] >= 1
        residency.close()


# --------------------------------------------------------------------- #
# The worker-side registry through a real pool
# --------------------------------------------------------------------- #


class TestWorkerSpill:
    def _retain(self, mgr, pool, shard, f):
        from repro.bdd import dump_nodes

        handle = pool.new_handle()
        pool.call(shard, ("retain", handle, dump_nodes(mgr, [f])))
        return handle

    def test_forced_spill_gc_sift_reload(self, mgr) -> None:
        a, b, c = (mgr.var_node(mgr.var_index(v)) for v in "abc")
        functions = [
            mgr.apply_xor(a, b),
            mgr.apply_or(mgr.apply_and(a, c), b),
            mgr.apply_not(mgr.apply_and(b, c)),
        ]
        with ShardPool(1, VARS) as pool:
            handles = [self._retain(mgr, pool, 0, f) for f in functions]
            assert pool.call(0, ("spill", None)) == len(functions)
            stats = pool.stats()[0]
            assert stats["resident"] == 0
            assert stats["spilled"] == len(functions)
            assert stats["psi_spills"] == len(functions)
            pool.call(0, ("gc",))
            pool.call(0, ("sift",))
            for handle, f in zip(handles, functions):
                (back,) = load_nodes(mgr, pool.call(0, ("dump", handle)))
                assert back == f
            stats = pool.stats()[0]
            assert stats["psi_reloads"] == len(functions)
            assert stats["spilled"] == 0  # all touched back in

    def test_budget_spills_automatically(self, mgr) -> None:
        with ShardPool(1, VARS, resident_budget=1) as pool:
            a, b = mgr.var_node(mgr.var_index("a")), mgr.var_node(
                mgr.var_index("b")
            )
            h1 = self._retain(mgr, pool, 0, mgr.apply_xor(a, b))
            h2 = self._retain(mgr, pool, 0, mgr.apply_or(a, b))
            stats = pool.stats()[0]
            assert stats["psi_spills"] > 0
            assert stats["resident_budget"] == 1
            assert stats["resident_nodes"] <= 1
            # Both survive, whichever side of the budget they're on.
            (f1,) = load_nodes(mgr, pool.call(0, ("dump", h1)))
            (f2,) = load_nodes(mgr, pool.call(0, ("dump", h2)))
            assert f1 == mgr.apply_xor(a, b)
            assert f2 == mgr.apply_or(a, b)

    def test_release_of_spilled_entries_is_leak_free(self, mgr) -> None:
        with ShardPool(1, VARS) as pool:
            from repro.bdd import dump_nodes

            # Literal nodes are permanent GC roots: materialise them
            # before the baseline so the check measures the registry.
            parity = 0
            for name in VARS:
                parity = mgr.apply_xor(parity, mgr.var_node(mgr.var_index(name)))
            warm = pool.new_handle()
            pool.call(0, ("retain", warm, dump_nodes(mgr, [parity])))
            pool.call(0, ("release", [warm]))
            pool.call(0, ("gc",))
            baseline = pool.stats()[0]["live_nodes"]
            a, b, c = (mgr.var_node(mgr.var_index(v)) for v in "abc")
            fs = [mgr.apply_xor(a, b), mgr.apply_and(mgr.apply_or(a, b), c)]
            handles = [self._retain(mgr, pool, 0, f) for f in fs]
            pool.call(0, ("spill", [handles[0]]))
            assert pool.call(0, ("release", handles)) == len(handles)
            pool.call(0, ("gc",))
            stats = pool.stats()[0]
            assert stats["resident"] == 0
            assert stats["spilled"] == 0
            assert stats["live_nodes"] == baseline

    @settings(
        deadline=None,
        max_examples=10,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(exprs=st.lists(expressions(max_leaves=8), min_size=1, max_size=5))
    def test_round_trip_random(self, exprs) -> None:
        m = BddManager()
        m.add_vars(VARS)
        functions = [_build(m, e) for e in exprs]
        with ShardPool(1, VARS, resident_budget=2) as pool:
            handles = [self._retain(m, pool, 0, f) for f in functions]
            pool.call(0, ("spill", None))
            pool.call(0, ("gc",))
            pool.call(0, ("sift",))
            for handle, f in zip(handles, functions):
                (back,) = load_nodes(m, pool.call(0, ("dump", handle)))
                assert back == f


# --------------------------------------------------------------------- #
# Result identity of budgeted solves
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("case", TABLE1_CASES, ids=[c.name for c in TABLE1_CASES])
def test_budgeted_solve_byte_identical(case) -> None:
    """A tiny resident budget must not change the result at all.

    Both solves share one problem (and manager), so KISS byte identity
    is the strongest available check: same states, same names, same
    edge labels, same text.
    """
    prob = build_latch_split_problem(
        case.network(), list(case.x_latches), max_nodes=case.max_nodes
    )
    base = solve_equation(prob, method="partitioned")
    bounded = solve_equation(prob, method="partitioned", resident_budget=256)
    assert write_kiss(bounded.csf) == write_kiss(base.csf)
    assert bounded.stats.subsets == base.stats.subsets
    assert bounded.stats.edges == base.stats.edges
    extra = bounded.stats.extra
    assert extra["resident_budget"] == 256
    assert extra["resident_nodes_peak"] > 0


def test_budgeted_solve_actually_spills() -> None:
    """On a state-heavy instance the budget must trigger real evictions."""
    net = circuits.johnson(8)
    prob = build_latch_split_problem(net, ["j1", "j3", "j5", "j7"])
    base = solve_equation(prob, method="partitioned")
    bounded = solve_equation(prob, method="partitioned", resident_budget=20)
    assert write_kiss(bounded.csf) == write_kiss(base.csf)
    extra = bounded.stats.extra
    assert extra["psi_spills"] > 0
    assert extra["resident_evictions"] > 0
    assert 0 < extra["resident_nodes_peak"]
    # 1024 subset states never sit materialized at once under budget 20.
    assert extra["evicted_peak"] > 100


def test_sharded_budgeted_solve_spills_and_reloads() -> None:
    """Workers under budget spill to the shared store and reload on touch."""
    net = circuits.johnson(8)
    prob = build_latch_split_problem(net, ["j1", "j3", "j5", "j7"])
    base = solve_equation(prob, method="partitioned", frontier="bfs", batch=8)
    bounded = solve_equation(
        prob,
        method="partitioned",
        shards=2,
        frontier="bfs",
        batch=8,
        resident_budget=40,
    )
    assert write_kiss(bounded.csf) == write_kiss(base.csf)
    extra = bounded.stats.extra
    assert extra["psi_spills"] > 0
    assert extra["psi_reloads"] > 0
    assert extra["resident_evictions"] > 0


def test_budget_rejected_for_explicit_method() -> None:
    net = circuits.counter(4)
    prob = build_latch_split_problem(net, ["b1"])
    with pytest.raises(EquationError):
        solve_equation(prob, method="explicit", resident_budget=10)
