"""Garbage collection and variable reordering for the BDD manager.

Pure-Python managers cannot afford CUDD-style in-place sifting, so this
module provides the two operations that matter at our scale:

* :func:`compact` — mark-and-sweep garbage collection that rebuilds the
  node arrays keeping only nodes reachable from the given roots, and
  returns an old-id -> new-id mapping for the caller's live references;
* :func:`transfer` / :func:`reorder` — copy functions into another
  manager (possibly with a different variable order), which doubles as a
  rebuild-based reordering primitive.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.bdd.manager import FALSE, TRUE, BddManager
from repro.errors import BddError


def compact(mgr: BddManager, roots: Iterable[int]) -> dict[int, int]:
    """Garbage-collect ``mgr`` keeping only nodes reachable from ``roots``.

    Node ids are renumbered; the returned dict maps every old live id
    (including terminals) to its new id, and callers must remap any node
    ids they hold.  All computed tables are cleared.
    """
    reachable: set[int] = {FALSE, TRUE}
    stack = list(roots)
    while stack:
        node = stack.pop()
        if node < 2 or node in reachable:
            continue
        reachable.add(node)
        stack.append(mgr._lo[node])
        stack.append(mgr._hi[node])

    mapping: dict[int, int] = {FALSE: FALSE, TRUE: TRUE}
    new_var: list[int] = [-1, -1]
    new_lo: list[int] = [0, 1]
    new_hi: list[int] = [0, 1]
    new_unique: dict[tuple[int, int, int], int] = {}
    # Children are always created before parents, so ascending id order is
    # a valid topological order.
    for node in range(2, len(mgr._var)):
        if node not in reachable:
            continue
        var = mgr._var[node]
        lo = mapping[mgr._lo[node]]
        hi = mapping[mgr._hi[node]]
        new_id = len(new_var)
        new_var.append(var)
        new_lo.append(lo)
        new_hi.append(hi)
        new_unique[(var, lo, hi)] = new_id
        mapping[node] = new_id

    mgr._var = new_var
    mgr._lo = new_lo
    mgr._hi = new_hi
    mgr._unique = new_unique
    mgr.clear_caches()
    mgr._not_cache.clear()
    return mapping


def transfer(
    f: int,
    src: BddManager,
    dst: BddManager,
    name_map: dict[str, str] | None = None,
) -> int:
    """Copy function ``f`` from manager ``src`` into manager ``dst``.

    Variables are matched by name (optionally renamed through
    ``name_map``); they must already be declared in ``dst``.  The copy is
    order-safe: it recombines children with ITE, so the destination order
    may differ arbitrarily from the source order.
    """
    memo: dict[int, int] = {FALSE: FALSE, TRUE: TRUE}

    def rec(node: int) -> int:
        cached = memo.get(node)
        if cached is not None:
            return cached
        name = src.var_name(src.node_var(node))
        if name_map is not None:
            name = name_map.get(name, name)
        try:
            var = dst.var_index(name)
        except KeyError:
            raise BddError(f"transfer: variable {name!r} not declared in destination")
        lo = rec(src.node_lo(node))
        hi = rec(src.node_hi(node))
        result = dst.ite(dst.var_node(var), hi, lo)
        memo[node] = result
        return result

    return rec(f)


def reorder(
    mgr: BddManager,
    new_order: Sequence[str],
    roots: Sequence[int],
) -> tuple[BddManager, list[int]]:
    """Rebuild ``roots`` in a fresh manager with variable order ``new_order``.

    Returns the new manager and the transferred roots.  ``new_order`` must
    list every variable of ``mgr`` exactly once (top to bottom).
    """
    if sorted(new_order) != sorted(mgr.var_order()):
        raise BddError("reorder must mention every declared variable once")
    fresh = BddManager(max_nodes=mgr.max_nodes)
    fresh.add_vars(new_order)
    new_roots = [transfer(f, mgr, fresh) for f in roots]
    return fresh, new_roots


def greedy_sift_order(
    mgr: BddManager,
    roots: Sequence[int],
    *,
    max_passes: int = 1,
) -> list[str]:
    """Search for a better variable order by rebuild-based sifting.

    A lightweight stand-in for CUDD's dynamic reordering: each variable in
    turn is tried at every position (by rebuilding the roots in a scratch
    manager) and left at the position minimising the shared node count.
    Quadratic in the number of variables and linear in BDD size per trial,
    so intended for modest managers; returns the best order found.
    """
    order = mgr.var_order()
    if not roots or len(order) < 3:
        return order

    def cost(candidate: Sequence[str]) -> int:
        scratch = BddManager()
        scratch.add_vars(candidate)
        copies = [transfer(f, mgr, scratch) for f in roots]
        return scratch.size_many(copies)

    best_cost = cost(order)
    for _ in range(max_passes):
        improved = False
        for name in list(order):
            base = [n for n in order if n != name]
            for pos in range(len(order)):
                candidate = base[:pos] + [name] + base[pos:]
                if candidate == order:
                    continue
                c = cost(candidate)
                if c < best_cost:
                    best_cost = c
                    order = candidate
                    improved = True
        if not improved:
            break
    return order
