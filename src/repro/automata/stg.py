"""State transition graph extraction: sequential network -> automaton.

Per Section 2 of the paper: "The automata for F and S are derived, from
the multi-level networks representing them, simply by taking the set of
inputs of these automata as the union of the sets of inputs and outputs
of the corresponding network. ... All reachable states of a network are
the accepting states of the corresponding automaton" (FSMs are
prefix-closed; completion adds the one non-accepting DC state).

The extraction enumerates reachable latch valuations explicitly and input
minterms per state — exponential in the input count, so it is meant for
the explicit reference flow and for tests on small circuits.  The
symbolic solver flows never build this object for F x S.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.bdd.manager import BddManager
from repro.errors import AutomatonError
from repro.automata.automaton import Automaton
from repro.network.netlist import Network


def state_label(state: dict[str, int], latches: Sequence[str]) -> str:
    """Canonical textual label of a latch valuation, e.g. ``"01"``."""
    return "".join(str(state[name]) for name in latches)


def network_to_automaton(
    net: Network,
    manager: BddManager | None = None,
    *,
    max_states: int | None = None,
) -> Automaton:
    """Build the (incomplete, all-accepting) automaton of a network.

    The alphabet is ``net.inputs + net.outputs`` in network order; the
    variables are declared in ``manager`` on demand (a fresh manager is
    created when none is given).  States are the reachable latch
    valuations; every state is accepting.  The automaton is deterministic
    and in general incomplete: a letter ``(i, o)`` is defined in a state
    only when ``o`` equals the network's output under ``i``.

    Parameters
    ----------
    max_states:
        Safety valve; raises :class:`AutomatonError` when exceeded.
    """
    net.validate()
    mgr = manager if manager is not None else BddManager()
    variables = tuple(net.inputs) + tuple(net.outputs)
    for name in variables:
        if not mgr.has_var(name):
            mgr.add_var(name)
    overlap = set(net.inputs) & set(net.outputs)
    if overlap:
        raise AutomatonError(f"signals both input and output: {sorted(overlap)}")

    aut = Automaton(mgr, variables)
    latches = net.latch_names()
    init = net.initial_state()
    ids: dict[tuple[int, ...], int] = {}
    queue: list[dict[str, int]] = []

    def state_id(state: dict[str, int]) -> int:
        key = tuple(state[name] for name in latches)
        sid = ids.get(key)
        if sid is None:
            if max_states is not None and len(ids) >= max_states:
                raise AutomatonError(f"more than {max_states} reachable states")
            sid = aut.add_state(state_label(state, latches), accepting=True)
            ids[key] = sid
            queue.append(dict(state))
        return sid

    state_id(init)
    n_inputs = len(net.inputs)
    while queue:
        state = queue.pop(0)
        src = ids[tuple(state[name] for name in latches)]
        for code in range(1 << n_inputs):
            inputs = {
                name: (code >> k) & 1 for k, name in enumerate(net.inputs)
            }
            outputs, next_state = net.step(state, inputs)
            letter = {**inputs, **outputs}
            aut.add_letter_edge(src, state_id(next_state), letter)
    return aut


def reachable_state_count(net: Network, *, max_states: int | None = None) -> int:
    """Number of reachable latch valuations (explicit BFS)."""
    return network_to_automaton(net, max_states=max_states).num_states
