"""The single solver thread behind the job server.

BDD managers are not thread-safe, so solves are strictly serialised:
one daemon thread drains a queue of jobs and runs them through
:func:`repro.eqn.solver.solve_equation` one at a time.  The HTTP layer
stays fully concurrent — status, event polling, cancellation and cache
hits never wait on the solver.

The executor owns the **warm shard pool**: the first sharded job forks
the worker processes, and every later job with the same ``--shards``
reuses them through :meth:`~repro.shard.pool.ShardPool.reset` (worker
managers are rebuilt in-process; no fork, no re-import).  Jobs with a
different shard count close and re-fork the pool; in-process jobs
(``shards=1``) leave it untouched.
"""

from __future__ import annotations

import queue
import threading
import traceback

from repro.errors import ReproError, SolveCancelled
from repro.obs.log import get_logger
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import span as obs_span
from repro.serve.jobs import Job, JobRegistry
from repro.serve.payload import dump_result
from repro.serve.store import ResultStore

_log = get_logger("repro.serve.executor")


def register_serve_metrics(metrics: MetricsRegistry) -> MetricsRegistry:
    """Pre-register the server's metric families (so ``/metrics`` shows
    every family at 0 before the first job) and return the registry."""
    metrics.counter(
        "repro_solves_total", "Solve jobs finished, by terminal status."
    )
    metrics.histogram(
        "repro_solve_seconds", "Wall-clock solver time per completed job."
    )
    metrics.counter(
        "repro_cache_hits_total", "Submits answered from the result cache."
    )
    metrics.counter(
        "repro_cache_misses_total", "Submits that had to run the solver."
    )
    metrics.counter(
        "repro_steals_total", "Work-stealing dispatches across shard workers."
    )
    metrics.counter(
        "repro_memo_hits_total", "Completion-memo hits in the subset construction."
    )
    metrics.counter("repro_gc_runs_total", "Kernel garbage-collection sweeps.")
    metrics.counter(
        "repro_reorder_runs_total", "Dynamic variable-reordering (sift) runs."
    )
    metrics.counter(
        "repro_psi_serializations_total",
        "Constraint BDDs serialized to shard workers.",
    )
    metrics.counter(
        "repro_psi_spills_total",
        "Resident subset states spilled to the content-addressed store.",
    )
    metrics.counter(
        "repro_psi_reloads_total",
        "Spilled subset states reloaded on a later touch.",
    )
    metrics.counter(
        "repro_resident_evictions_total",
        "Resident-table evictions under a node budget.",
    )
    metrics.counter(
        "repro_shard_commands_total", "Shard worker commands, by operation."
    )
    metrics.gauge("repro_queue_depth", "Jobs waiting for the executor thread.")
    metrics.gauge("repro_cache_entries", "Entries in the result cache store.")
    metrics.gauge("repro_uptime_seconds", "Seconds since the server started.")
    return metrics


class SolveExecutor:
    """Serialised job runner with a reusable shard pool."""

    def __init__(
        self,
        registry: JobRegistry,
        store: ResultStore,
        *,
        batch_hook=None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.registry = registry
        self.store = store
        #: Test seam: called as ``batch_hook(job, event)`` after every
        #: progress event, from the solver thread.  The e2e cancellation
        #: test blocks here mid-solve, cancels over HTTP, then releases.
        self.batch_hook = batch_hook
        self.metrics = register_serve_metrics(
            metrics if metrics is not None else MetricsRegistry()
        )
        self._queue: "queue.Queue[Job | None]" = queue.Queue()
        self._pool = None
        self._thread = threading.Thread(
            target=self._loop, name="repro-serve-executor", daemon=True
        )
        self._started = False

    # ------------------------------------------------------------------ #

    def start(self) -> None:
        if not self._started:
            self._started = True
            self._thread.start()

    def stop(self, timeout: float = 30.0) -> None:
        """Drain-stop: finish queued jobs, close the pool, join."""
        if self._started:
            self._queue.put(None)
            self._thread.join(timeout=timeout)
        self._close_pool()

    def enqueue(self, job: Job) -> None:
        self._queue.put(job)

    @property
    def pool(self):
        """The warm pool (tests assert on its ``op_counts``)."""
        return self._pool

    @property
    def queue_depth(self) -> int:
        """Jobs waiting for the executor thread (health endpoint)."""
        return self._queue.qsize()

    # ------------------------------------------------------------------ #

    def _loop(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                break
            try:
                self._run(job)
            except BaseException:  # pragma: no cover - belt and braces
                _log.exception("executor loop error", job=job.id)
                self.registry.set_status(
                    job, "failed", error=traceback.format_exc()
                )

    def _run(self, job: Job) -> None:
        solves = self.metrics.counter("repro_solves_total", "")
        if job.cancel_event.is_set():
            _log.info("job cancelled before start", job=job.id)
            self.registry.set_status(job, "cancelled")
            solves.inc(status="cancelled")
            return
        cached = self.store.get(job.key)
        if cached is not None:
            # A twin of this job finished while it sat in the queue.
            job.cached = True
            job.summary = _result_summary(cached, cached=True)
            self.registry.set_status(job, "done")
            self.metrics.counter("repro_cache_hits_total", "").inc()
            return
        self.registry.set_status(job, "running")
        try:
            payload = self._solve(job)
        except SolveCancelled:
            _log.info("job cancelled mid-solve", job=job.id)
            self.registry.set_status(job, "cancelled")
            solves.inc(status="cancelled")
            return
        except ReproError as exc:
            _log.warning(
                "job failed",
                job=job.id,
                error=f"{type(exc).__name__}: {exc}",
            )
            self.registry.set_status(
                job, "failed", error=f"{type(exc).__name__}: {exc}"
            )
            solves.inc(status="failed")
            return
        except Exception:
            _log.exception("job crashed", job=job.id)
            self.registry.set_status(job, "failed", error=traceback.format_exc())
            solves.inc(status="failed")
            return
        self.store.put(job.key, payload)
        self.store.drop_checkpoint(job.key)
        job.summary = _result_summary(payload, cached=False)
        job.metrics = _job_metrics(payload)
        self._record_metrics(payload)
        self.registry.set_status(job, "done")
        _log.info(
            "job done",
            job=job.id,
            seconds=payload["seconds"],
            csf_states=payload["csf_states"],
        )

    def _record_metrics(self, payload: dict) -> None:
        """Federate one finished solve's stats into the registry."""
        m = self.metrics
        m.counter("repro_solves_total", "").inc(status="done")
        m.histogram("repro_solve_seconds", "").observe(payload["seconds"])
        m.counter("repro_cache_misses_total", "").inc()
        extra = (payload.get("stats") or {}).get("extra") or {}
        for family, key in (
            ("repro_steals_total", "work_steals"),
            ("repro_memo_hits_total", "completion_memo_hits"),
            ("repro_gc_runs_total", "gc_runs"),
            ("repro_reorder_runs_total", "reorder_runs"),
            ("repro_psi_serializations_total", "psi_serializations"),
            ("repro_psi_spills_total", "psi_spills"),
            ("repro_psi_reloads_total", "psi_reloads"),
            ("repro_resident_evictions_total", "resident_evictions"),
        ):
            amount = extra.get(key) or 0
            if amount:
                m.counter(family, "").inc(amount)
        for op, count in (extra.get("pool_op_counts") or {}).items():
            m.counter("repro_shard_commands_total", "").inc(count, op=op)

    # ------------------------------------------------------------------ #

    def _solve(self, job: Job) -> dict:
        from repro.eqn.problem import build_problem
        from repro.eqn.solver import solve_equation
        from repro.network.blif import parse_blif
        from repro.network.transform import latch_split
        from repro.util.limits import ResourceLimit

        spec, options = job.spec, job.options
        net = parse_blif(spec["blif"])
        split = latch_split(net, spec["x_latches"], u_signals=spec["u_signals"])
        max_nodes = options.get("max_nodes")
        with obs_span("build_problem", network=net.name, job=job.id):
            problem = build_problem(
                split,
                max_nodes=max_nodes,
                reorder=spec["reorder"],
                gc=spec["gc"],
                backend=options.get("backend", "python"),
                product_order=spec.get("product_order", "stacked"),
            )
        limit = None
        if options.get("max_seconds") is not None or max_nodes is not None:
            limit = ResourceLimit(
                max_seconds=options.get("max_seconds"), max_nodes=max_nodes
            )

        def on_progress(event: dict) -> None:
            self.registry.add_event(job, {"type": "progress", **event})
            if self.batch_hook is not None:
                self.batch_hook(job, event)

        def on_checkpoint(snapshot: dict) -> None:
            self.store.put_checkpoint(job.key, snapshot)
            self.registry.add_event(
                job,
                {
                    "type": "checkpoint",
                    "batches": snapshot["stats"]["batches"],
                    "subsets": snapshot["stats"]["subsets"],
                    "frontier": len(snapshot["frontier"]),
                },
            )

        resume = None
        if options.get("resume", True):
            resume = self.store.get_checkpoint(job.key)
            if resume is not None:
                job.resumed = True
                self.registry.add_event(
                    job,
                    {
                        "type": "resume",
                        "batches": resume["stats"]["batches"],
                        "subsets": resume["stats"]["subsets"],
                    },
                )
        pool = None
        if spec["method"] == "partitioned" and spec["shards"] > 1:
            pool = self._ensure_pool(
                problem.manager,
                spec["shards"],
                resident_budget=options.get("resident_budget"),
            )
        result = solve_equation(
            problem,
            method=spec["method"],
            limit=limit,
            schedule=spec["schedule"],
            trim=spec["trim"],
            shards=spec["shards"],
            frontier=spec["frontier"],
            batch=spec["batch"],
            pool=pool,
            progress=on_progress,
            cancel=job.cancel_event.is_set,
            checkpoint=(
                on_checkpoint
                if options.get("checkpoint_every")
                or options.get("checkpoint_seconds")
                else None
            ),
            checkpoint_every=int(options.get("checkpoint_every") or 0),
            checkpoint_seconds=float(options.get("checkpoint_seconds") or 0.0),
            resume=resume,
            resident_budget=options.get("resident_budget"),
        )
        return dump_result(result, cache_key=job.key)

    def _ensure_pool(self, mgr, shards: int, *, resident_budget=None):
        """Reset the warm pool for this problem, re-forking when needed."""
        from repro.shard.pool import ShardError, ShardPool

        opts = {
            "max_nodes": mgr.max_nodes,
            "gc": mgr.gc_policy.mode,
            "reorder": mgr.reorder_policy.mode,
            "backend": getattr(mgr, "backend_name", "python"),
            # A runtime knob like the rest: workers spill their resident
            # registries to private stores under this budget (and the
            # next job's reset clears it again when unset).
            "resident_budget": resident_budget,
        }
        if self._pool is not None and self._pool.num_shards == shards:
            try:
                self._pool.reset(mgr.var_order(), **opts)
                return self._pool
            except ShardError:
                # A worker died since the last job; fall through and
                # re-fork the whole pool.
                self._close_pool()
        else:
            self._close_pool()
        self._pool = ShardPool(shards, mgr.var_order(), **opts)
        return self._pool

    def _close_pool(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool = None


def _result_summary(payload: dict, *, cached: bool) -> dict:
    """The small JSON block the status endpoint shows for a done job."""
    return {
        "csf_states": payload["csf_states"],
        "seconds": payload["seconds"],
        "cached": cached,
        "method": payload["method"],
        "cache_key": payload["cache_key"],
    }


def _job_metrics(payload: dict) -> dict:
    """Per-job counter snapshot shown in job status and ``repro jobs``."""
    stats = payload.get("stats") or {}
    extra = stats.get("extra") or {}
    return {
        "solve_seconds": payload["seconds"],
        "subsets": stats.get("subsets", 0),
        "batches": stats.get("batches", 0),
        "peak_nodes": stats.get("peak_nodes", 0),
        "memo_hits": extra.get("completion_memo_hits", 0),
        "steals": extra.get("work_steals", 0),
        "gc_runs": extra.get("gc_runs", 0),
        "psi_serializations": extra.get("psi_serializations", 0),
        "psi_spills": extra.get("psi_spills", 0),
        "psi_reloads": extra.get("psi_reloads", 0),
    }
