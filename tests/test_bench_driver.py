"""Bench-driver surface tests: --list, run metadata, the shim warning."""

from __future__ import annotations

import importlib.util
import json
import warnings

import pytest

from repro.bench import driver


class TestListWorkloads:
    def test_lists_kernel_and_table1(self) -> None:
        listing = driver.list_workloads()
        for name, _fn, _full, _smoke in driver.KERNEL_WORKLOADS:
            assert name in listing
        assert "table1/s27" in listing
        assert "table1/johnson12" in listing

    def test_lists_variants_without_running(self) -> None:
        listing = driver.list_workloads()
        assert "rand14@auto" in listing
        assert "johnson12@shards2" in listing
        assert "reach@shards2" in listing

    def test_cli_flag_runs_nothing(self, tmp_path, capsys) -> None:
        rc = driver.main(["--list", "--out-dir", str(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "kernel workloads" in out
        assert "indep_images@shards1" in out
        assert list(tmp_path.iterdir()) == []  # nothing written, nothing run

    def test_repro_bench_list_via_console_entry(self, capsys) -> None:
        from repro.cli import main

        assert main(["bench", "--list"]) == 0
        assert "table1 cases" in capsys.readouterr().out


class TestMeta:
    def test_records_environment(self) -> None:
        meta = driver.meta(False)
        assert isinstance(meta["cpu_count"], int) and meta["cpu_count"] >= 1
        assert meta["python"].count(".") == 2
        assert meta["platform"]
        assert meta["smoke"] is False

    def test_extra_knobs_merge(self) -> None:
        meta = driver.meta(True, reorder="auto", gc="adaptive")
        assert meta["reorder"] == "auto"
        assert meta["gc"] == "adaptive"


class TestDiffEnvironmentLine:
    def test_markdown_diff_surfaces_cpu_counts(self, tmp_path) -> None:
        results = [
            {"name": "w", "size": 5, "wall_s": 0.01, "peak_live_nodes": 1}
        ]
        baseline = {
            "meta": {"cpu_count": 64, "python": "3.99.0", "git_rev": "abc"},
            "results": [
                {"name": "w", "size": 5, "wall_s": 0.01, "peak_live_nodes": 1}
            ],
        }
        path = tmp_path / "base.json"
        path.write_text(json.dumps(baseline))
        md = driver.format_markdown_diff(results, path, 1.5)
        assert "cpus=64" in md  # the baseline environment
        assert "Environment: cpus=" in md  # the current one
        assert "python=3.99.0" in md

    def test_diff_tolerates_missing_baseline_meta(self, tmp_path) -> None:
        path = tmp_path / "base.json"
        path.write_text(json.dumps({"results": []}))
        md = driver.format_markdown_diff([], path, 1.5)
        assert "cpus=?" in md


class TestShimDeprecation:
    def _load_shim(self):
        import pathlib

        repo = pathlib.Path(__file__).resolve().parent.parent
        spec = importlib.util.spec_from_file_location(
            "bench_run_all_depr", repo / "benchmarks" / "run_all.py"
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    def test_shim_warns_and_points_at_repro_bench(self) -> None:
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            module = self._load_shim()
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert deprecations, "shim must emit a DeprecationWarning"
        assert "repro bench" in str(deprecations[0].message)
        # The shim still re-exports the driver surface.
        assert module.main is driver.main

    def test_package_driver_does_not_warn(self) -> None:
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            importlib.reload(driver)
        assert not [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]


@pytest.mark.parametrize("name", ["reach@shards1", "reach@shards2",
                                  "indep_images@shards1", "indep_images@shards2"])
def test_shard_workloads_registered_in_pairs(name) -> None:
    names = [n for n, *_ in driver.KERNEL_WORKLOADS]
    assert name in names
    base, variant = name.split("@")
    # Every @shardsN row has its @shards1 twin at the same size.
    sizes = {
        n: (full, smoke) for n, _f, full, smoke in driver.KERNEL_WORKLOADS
    }
    assert sizes[f"{base}@shards1"] == sizes[name]
