"""Sub-solution extraction: from the CSF back to a circuit.

The paper closes with: "Finding an optimum sub-solution of the CSF
remains the outstanding problem for future research."  This module
implements the natural baseline for that step, which makes the library
usable end to end for resynthesis:

1. **Determinise the choice**: the CSF allows, per state and per input
   letter ``u``, a *set* of output letters ``v`` (and successors).  An
   FSM implementation must pick exactly one.  :func:`extract_fsm` picks
   deterministically (lexicographically smallest ``(v, successor)``),
   yielding a complete Mealy machine over ``(u, v)``.
2. **Minimise** the chosen machine (Moore partition refinement).
3. **Encode** it as a multi-level sequential network
   (:func:`fsm_to_network`): binary state encoding, next-state and
   output functions synthesised as sums of minterm cubes.

The result can be recomposed with the fixed component ``F`` and is
guaranteed (and tested) to satisfy ``F ∘ X' ⊆ S``.
"""

from __future__ import annotations

import itertools
from collections.abc import Sequence
from dataclasses import dataclass

from repro.bdd.cube import pick_minterm
from repro.bdd.manager import FALSE
from repro.errors import EquationError
from repro.expr.ast import And, Const, Expr, Not, Or, Var
from repro.automata.automaton import Automaton
from repro.automata.ops import minimize
from repro.network.netlist import Network


@dataclass
class Implementation:
    """An implementable sub-solution of a CSF."""

    fsm: Automaton  # deterministic, u-complete Mealy machine over (u, v)
    network: Network  # its circuit encoding (inputs u, outputs v)
    state_count: int


def extract_fsm(
    csf: Automaton,
    u_names: Sequence[str],
    v_names: Sequence[str],
) -> Automaton:
    """Pick one deterministic, u-complete FSM inside the CSF.

    For every reachable state and every ``u`` assignment the CSF (being
    input-progressive) offers at least one ``(v, successor)`` option; the
    lexicographically smallest is chosen, so the result is reproducible.
    The selection is exponential in ``len(u_names)`` (one decision per
    input letter), like any Mealy table construction.
    """
    if csf.initial is None or not csf.accepting:
        raise EquationError("cannot extract an FSM from an empty CSF")
    mgr = csf.manager
    u_vars = [mgr.var_index(n) for n in u_names]
    v_vars = [mgr.var_index(n) for n in v_names]

    fsm = Automaton(mgr, csf.variables)
    ids: dict[int, int] = {}
    queue: list[int] = []

    def fsm_id(state: int) -> int:
        sid = ids.get(state)
        if sid is None:
            sid = fsm.add_state(csf.state_names[state], accepting=True)
            ids[state] = sid
            queue.append(state)
        return sid

    fsm_id(csf.initial)
    while queue:
        state = queue.pop(0)
        src = ids[state]
        for u_bits in itertools.product((0, 1), repeat=len(u_vars)):
            u_assign = dict(zip(u_vars, u_bits))
            best: tuple[tuple[int, ...], int] | None = None
            for dst, label in csf.edges[state].items():
                cof = mgr.cofactor_cube(label, u_assign)
                if cof == FALSE:
                    continue
                v_choice = pick_minterm(mgr, cof, v_vars)
                key = (tuple(v_choice[v] for v in v_vars), dst)
                if best is None or key < best:
                    best = key
            if best is None:
                raise EquationError(
                    f"CSF state {csf.state_names[state]!r} is not "
                    f"input-progressive for u={u_bits}"
                )
            v_bits, dst = best
            letter = {name: bit for name, bit in zip(u_names, u_bits)}
            letter.update({name: bit for name, bit in zip(v_names, v_bits)})
            fsm.add_letter_edge(src, fsm_id(dst), letter)
    return fsm


def fsm_to_network(
    fsm: Automaton,
    u_names: Sequence[str],
    v_names: Sequence[str],
    *,
    name: str = "implementation",
) -> Network:
    """Encode a deterministic u-complete Mealy automaton as a circuit.

    States are binary-encoded in ``ceil(log2(n))`` latches initialised to
    the code of the initial state (the initial state gets code 0).
    Next-state and output functions are sums of ``(state, u)`` minterm
    cubes read off the transition table.
    """
    if fsm.initial is None:
        raise EquationError("cannot encode an empty automaton")
    mgr = fsm.manager
    u_vars = [mgr.var_index(n) for n in u_names]
    v_vars = [mgr.var_index(n) for n in v_names]

    # Order states so the initial state has code 0.
    order = [fsm.initial] + [s for s in range(fsm.num_states) if s != fsm.initial]
    code = {state: idx for idx, state in enumerate(order)}
    n_bits = max(1, (fsm.num_states - 1).bit_length())
    state_sig = [f"st{k}" for k in range(n_bits)]

    net = Network(name=name)
    for u in u_names:
        net.add_input(u)

    def state_cube_expr(state: int) -> Expr:
        bits = code[state]
        literals: list[Expr] = []
        for k, sig in enumerate(state_sig):
            literals.append(Var(sig) if (bits >> k) & 1 else Not(Var(sig)))
        return And(tuple(literals))

    def u_cube_expr(u_bits: Sequence[int]) -> Expr:
        literals: list[Expr] = []
        for bit, name in zip(u_bits, u_names):
            literals.append(Var(name) if bit else Not(Var(name)))
        return And(tuple(literals)) if literals else Const(True)

    ns_terms: list[list[Expr]] = [[] for _ in range(n_bits)]
    v_terms: dict[str, list[Expr]] = {v: [] for v in v_names}
    for state in range(fsm.num_states):
        for u_bits in itertools.product((0, 1), repeat=len(u_vars)):
            u_assign = dict(zip(u_vars, u_bits))
            found = None
            for dst, label in fsm.edges[state].items():
                cof = mgr.cofactor_cube(label, u_assign)
                if cof != FALSE:
                    v_choice = pick_minterm(mgr, cof, v_vars)
                    found = (dst, v_choice)
                    break
            if found is None:
                raise EquationError(
                    f"state {fsm.state_names[state]!r} has no transition "
                    f"for u={u_bits}; the FSM is not u-complete"
                )
            dst, v_choice = found
            cube = And((state_cube_expr(state), u_cube_expr(u_bits)))
            dst_code = code[dst]
            for k in range(n_bits):
                if (dst_code >> k) & 1:
                    ns_terms[k].append(cube)
            for v_name, v_var in zip(v_names, v_vars):
                if v_choice[v_var]:
                    v_terms[v_name].append(cube)

    for k, sig in enumerate(state_sig):
        terms = ns_terms[k]
        expr: Expr = Or(tuple(terms)) if terms else Const(False)
        net.add_node(f"ns_{sig}", expr)
        net.add_latch(sig, f"ns_{sig}", 0)
    for v_name in v_names:
        terms = v_terms[v_name]
        expr = Or(tuple(terms)) if terms else Const(False)
        net.add_node(v_name, expr)
        net.add_output(v_name)
    net.validate()
    return net


def implement_csf(
    csf: Automaton,
    u_names: Sequence[str],
    v_names: Sequence[str],
    *,
    minimise: bool = True,
    name: str = "implementation",
) -> Implementation:
    """End-to-end sub-solution: CSF -> deterministic FSM -> circuit."""
    fsm = extract_fsm(csf, u_names, v_names)
    if minimise:
        fsm = minimize(fsm)
    network = fsm_to_network(fsm, u_names, v_names, name=name)
    return Implementation(fsm=fsm, network=network, state_count=fsm.num_states)


def recompose_with_implementation(
    problem, implementation: Implementation
) -> Network:
    """Stitch ``F`` and an extracted implementation into one network.

    Analogous to :func:`repro.network.transform.recompose`, but with the
    synthesised circuit in place of the original split-off part.  State
    signals of the implementation are renamed to avoid collisions.
    """
    split = problem.split
    rename = {sig: f"x_{sig}" for sig in implementation.network.latches}
    rename.update(
        {
            latch.driver: f"x_{latch.driver}"
            for latch in implementation.network.latches.values()
        }
    )
    impl = implementation.network.rename_signals(rename)
    merged = Network(name=f"{split.original.name}_resynthesised")
    for name in split.original.inputs:
        merged.add_input(name)
    for latch in split.fixed.latches.values():
        merged.add_latch(latch.output, latch.driver, latch.init)
    for latch in impl.latches.values():
        merged.add_latch(latch.output, latch.driver, latch.init)
    for node in split.fixed.nodes.values():
        merged.add_node(node.name, node.expr)
    for node in impl.nodes.values():
        if node.name in merged.driven_signals():
            raise EquationError(f"recompose collision on {node.name!r}")
        merged.add_node(node.name, node.expr)
    from repro.network.transform import v_wire

    for out in split.original.outputs:
        merged.add_output(v_wire(out) if out in split.x_latches else out)
    merged.validate()
    return merged
