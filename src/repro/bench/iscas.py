"""Embedded ISCAS'89 material and the paper's worked example.

Only ``s27`` — the canonical tiny ISCAS'89 circuit, reproduced in many
textbooks — is embedded verbatim; the larger s-series netlists used in
the paper's Table 1 are not redistributable offline, and are substituted
by the synthetic circuits in :mod:`repro.bench.circuits` (see DESIGN.md).
"""

from __future__ import annotations

from repro.expr.ast import And, Not, Var, Xor
from repro.network.blif import parse_blif
from repro.network.netlist import Network

#: The ISCAS'89 s27 benchmark in BLIF form: 4 inputs, 1 output, 3 latches.
S27_BLIF = """
.model s27
.inputs G0 G1 G2 G3
.outputs G17
.latch G10 G5 0
.latch G11 G6 0
.latch G13 G7 0
.names G0 G14
0 1
.names G11 G17
0 1
.names G14 G6 G8
11 1
.names G12 G8 G15
00 0
.names G3 G8 G16
00 0
.names G16 G15 G9
11 0
.names G14 G11 G10
00 1
.names G5 G9 G11
00 1
.names G1 G7 G12
00 1
.names G2 G12 G13
00 1
.end
"""


def s27() -> Network:
    """The ISCAS'89 ``s27`` benchmark (4 inputs, 1 output, 3 latches)."""
    return parse_blif(S27_BLIF)


def figure3_network() -> Network:
    """The worked example of Figure 3 in the paper.

    One input ``i``, one output ``o``, two latches (initial state 00)
    with next-state functions ``T1 = i & cs2`` and ``T2 = !i | cs1`` and
    output function ``o = cs1 XOR cs2``.
    """
    net = Network(name="figure3")
    net.add_input("i")
    net.add_node("n1", And((Var("i"), Var("cs2"))))
    net.add_node("n2", Not(Var("i")) | Var("cs1"))
    net.add_latch("cs1", "n1", 0)
    net.add_latch("cs2", "n2", 0)
    net.add_node("o", Xor((Var("cs1"), Var("cs2"))))
    net.add_output("o")
    net.validate()
    return net
