"""Subset-construction benchmarks: explicit vs symbolic determinization.

The explicit Algorithm 1 path determinizes by explicit subset
construction over automaton states; the solver flows determinize
symbolically (subsets as characteristic-function BDDs).  These
benchmarks measure both on the same instances, showing why the paper
never builds the explicit intermediate automata.
"""

from __future__ import annotations

import pytest

from repro.bench import circuits, s27
from repro.eqn import build_latch_split_problem, solve_equation

CASES = {
    "s27/G6": (lambda: s27(), ["G6"]),
    "count4": (lambda: circuits.counter(4), ["b1", "b2"]),
    "johnson4": (lambda: circuits.johnson(4), ["j0", "j2"]),
    "det1011": (lambda: circuits.sequence_detector("1011"), ["h0", "h2"]),
}


@pytest.mark.parametrize("name", CASES, ids=str)
@pytest.mark.parametrize("method", ["partitioned", "explicit"])
def test_determinization_flows(benchmark, name, method) -> None:
    make, x = CASES[name]

    def run():
        problem = build_latch_split_problem(make(), x)
        return solve_equation(problem, method=method)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.csf_states > 0


def test_explicit_determinize_random_nfa(benchmark) -> None:
    """Raw subset construction on a dense random NFA."""
    import sys

    sys.path.insert(0, "tests")
    from tests.automata.conftest import random_automaton

    from repro.automata import determinize

    aut = random_automaton(5, n_states=7, edge_density=0.8)

    def run():
        return determinize(aut)

    det = benchmark(run)
    assert det.is_deterministic()
