"""Algorithm 1, executed literally on explicit automata.

This is the generic reference flow of Section 3.1::

    01 X := Complete(S)          05 X := Product(Complete(F), X)
    02 X := Determinize(X)       06 X := Support(X, (u,v))
    03 X := Complement(X)        07 X := Determinize(X)
    04 X := Support(X,(i,v,u,o)) 08 X := Complete(X)
                                 09 X := Complement(X)
                                 10 X := PrefixClose(X)
                                 11 X := Progressive(X, u)

Every step is a separate, observable automaton operation — no fusion, no
partitioned representation.  Exponential in all the wrong places, which
is exactly why it is the trustworthy ground truth for the two symbolic
flows in the cross-validation tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.automata.automaton import Automaton
from repro.automata.ops import (
    complement,
    complete,
    determinize,
    prefix_close,
    product,
    progressive,
    support,
)
from repro.automata.symbolic_stg import functions_to_automaton
from repro.eqn.problem import EquationProblem


@dataclass
class ExplicitTrace:
    """State counts after each step of Algorithm 1 (for inspection)."""

    steps: list[tuple[str, int]]


def specification_automaton(problem: EquationProblem) -> Automaton:
    """The automaton of ``S`` over the ``(i, o)`` alphabet."""
    original = problem.split.original
    return functions_to_automaton(
        problem.manager,
        alphabet=problem.i_names + problem.o_names,
        letter_bindings={
            problem.o_vars[name]: problem.s_o[name] for name in problem.o_names
        },
        next_state={
            problem.s_ns_vars[name]: problem.s_next[name]
            for name in original.latches
        },
        ns_of_cs={
            problem.s_cs_vars[name]: problem.s_ns_vars[name]
            for name in original.latches
        },
        init={
            problem.s_cs_vars[name]: latch.init
            for name, latch in original.latches.items()
        },
    )


def fixed_automaton(problem: EquationProblem) -> Automaton:
    """The automaton of ``F`` over the ``(i, v, o, u)`` alphabet."""
    fixed = problem.split.fixed
    letter_bindings = {
        problem.u_vars[name]: problem.f_u[name] for name in problem.u_names
    }
    letter_bindings.update(
        {problem.o_vars[name]: problem.f_o[name] for name in problem.o_names}
    )
    return functions_to_automaton(
        problem.manager,
        alphabet=problem.i_names + problem.v_names + problem.o_names + problem.u_names,
        letter_bindings=letter_bindings,
        next_state={
            problem.f_ns_vars[name]: problem.f_next[name] for name in fixed.latches
        },
        ns_of_cs={
            problem.f_cs_vars[name]: problem.f_ns_vars[name]
            for name in fixed.latches
        },
        init={
            problem.f_cs_vars[name]: latch.init
            for name, latch in fixed.latches.items()
        },
    )


def solve_explicit(
    problem: EquationProblem,
) -> tuple[Automaton, ExplicitTrace]:
    """Run Algorithm 1 step by step; returns the CSF and a step trace."""
    trace: list[tuple[str, int]] = []

    def record(step: str, aut: Automaton) -> Automaton:
        trace.append((step, aut.num_states))
        return aut

    all_vars = (
        problem.i_names + problem.v_names + problem.u_names + problem.o_names
    )
    s_aut = record("S", specification_automaton(problem))
    f_aut = record("F", fixed_automaton(problem))

    x = record("Complete(S)", complete(s_aut))
    x = record("Determinize", determinize(x))
    x = record("Complement", complement(x))
    x = record("Support(i,v,u,o)", support(x, all_vars))
    x = record("Product(Complete(F), X)", product(complete(f_aut), x))
    x = record("Support(u,v)", support(x, problem.uv_names()))
    x = record("Determinize", determinize(x))
    x = record("Complete", complete(x))
    x = record("Complement", complement(x))
    x = record("PrefixClose", prefix_close(x))
    x = record("Progressive(u)", progressive(x, problem.u_names))
    return x, ExplicitTrace(steps=trace)
