"""The paper's contribution: the partitioned transition oracle.

Implements Section 3.2 verbatim.  For each subset state ψ(cs):

* ``Q_ψ(u,v) = ∃i,cs [ Π_j(u_j ≡ U_j) ∧ ¬C ∧ ψ ]`` — the (u,v) classes
  under which some input makes the outputs of ``F`` and ``S``
  non-conform.  Computed **one output at a time** (``¬C = Σ_j ¬C_j``)
  so the monolithic conformance relation is never built.
* ``P_ψ(u,v,ns) = ∃i,cs [ Π_j(u_j ≡ U_j) ∧ Π_k(ns_k ≡ T_k) ∧ ψ ]`` —
  the successor image, a partitioned image computation with early
  quantification of ``i`` and ``cs``.
* ``P'_ψ = P_ψ ∧ ¬Q_ψ``; its (u,v)-cofactor classes are the outgoing
  edges, each leaf (a function of ``ns``) renamed ``ns → cs`` becoming
  the successor subset.
* letters with no successor and not in ``Q_ψ`` go to the accepting
  completion state ``DCA`` (handled by the driver).

Neither ``F`` nor ``S`` is ever completed and no monolithic relation is
ever constructed; validity rests on Theorem 1 (tested in
``tests/automata/test_commutation.py``).

``trim=False`` disables the DCN shortcut of footnote 9 for the E6
ablation: a DC1 flag variable is threaded through the image as one more
partition ``dc' ≡ (dc ∨ ¬C)``, non-conforming subsets are expanded like
any others, and prefix-closure removes them at the end.

Incremental completion
----------------------

``Q_ψ`` is recomputed for every subset in the classic flow, yet for a
fixed output ``j`` it only depends on the **cofactor class** of ψ with
respect to the support of its image parts: state variables that feed
neither the ``u`` functions nor ``¬C_j`` can be quantified out of ψ
first, and ``Q^j_ψ = Q^j_{∃R_j.ψ}``.  The oracle memoizes the per-output
images under that projection key, so sibling subsets that differ only in
latches irrelevant to an output share one image computation — in a
frontier batch the duplicates are deduplicated *before* any work is
scheduled.  Memo keys and values are pinned against garbage collection
(and therefore survive in-place reordering); hits/misses are reported
through :meth:`PartitionedOracle.run_stats`.

Sharded batching
----------------

``shards=N`` (N ≥ 2) distributes the oracle's image computations over a
:class:`~repro.shard.pool.ShardPool` of worker processes, each owning
its own shard manager: the ``P_ψ`` image runs as a cluster-sharded
:class:`~repro.shard.plan.ShardedImage` (partition clusters assigned to
shards, partial images joined in this manager), and the per-output
``Q_ψ`` images — independent of one another — are dealt round-robin
across the shards and OR-joined.  Both joins are exact, so the sharded
oracle is result-identical to ``shards=1`` (which keeps today's
in-process path, bit for bit).

Subset states are **shard-resident**: when a frontier batch arrives
(:meth:`PartitionedOracle.expand_batch`), each new ψ is serialized
exactly once and ``retain``-ed in every worker's resident registry;
every P/Q image of the batch then names ψ by its coordinator-keyed
handle, and the handles are ``release``-d when the batch completes.
All commands of a batch are submitted before any reply is collected
(the :class:`~repro.shard.pool.ShardPool` pipelining contract), so the
workers overlap their image computations across the whole batch instead
of one ψ at a time.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.bdd.cube import split_by_vars
from repro.bdd.io import dump_nodes, load_nodes
from repro.bdd.backends.protocol import BddBackend
from repro.bdd.manager import FALSE
from repro.errors import EquationError
from repro.obs.trace import span as obs_span
from repro.symb.image import image_partitioned, image_with_plan, plan_image
from repro.eqn.problem import EquationProblem
from repro.eqn.subset import SubsetEdge, expand_batch_pinned


class PartitionedOracle:
    """Transition oracle computing on partitioned representations."""

    def __init__(
        self,
        problem: EquationProblem,
        *,
        schedule: bool = True,
        trim: bool = True,
        shards: int = 1,
        shard_opts: Mapping[str, object] | None = None,
        pool: "object | None" = None,
    ) -> None:
        self.problem = problem
        self.schedule = schedule
        self.trim = trim
        mgr: BddBackend = problem.manager
        self.mgr = mgr

        # Π_j (u_j ≡ U_j): F's communication outputs.
        self.u_parts = [
            mgr.apply_iff(mgr.var_node(problem.u_vars[name]), problem.f_u[name])
            for name in problem.u_names
        ]
        # Π_k (ns_k ≡ T_k): product transition partition = union of the
        # partitions of F and S (the paper's partitioned product).
        self.t_parts = [
            mgr.apply_iff(mgr.var_node(problem.f_ns_vars[name]), problem.f_next[name])
            for name in problem.f_ns_vars
        ] + [
            mgr.apply_iff(mgr.var_node(problem.s_ns_vars[name]), problem.s_next[name])
            for name in problem.s_ns_vars
        ]
        # Per-output non-conformance ¬C_j = ¬[O^F_j ≡ O^S_j].
        self.nonconf = [
            mgr.apply_not(c) for _, c in problem.conformance_parts()
        ]
        self.quantify = problem.quantify_vars()
        self.ns_vars = problem.all_ns_vars()
        self.rename = problem.ns_to_cs()
        self.uv_vars = problem.uv_vars()
        self.init_cube = problem.init_cube
        if not self.trim:
            # DC1 flag partition: dc' ≡ (dc ∨ ¬C).   Only built in the
            # ablation mode — with trimming the flag never exists.
            any_nonconf = FALSE
            for nc in self.nonconf:
                any_nonconf = mgr.apply_or(any_nonconf, nc)
            flag = mgr.apply_or(mgr.var_node(problem.dc_var), any_nonconf)
            self.dc_part = mgr.apply_iff(mgr.var_node(problem.dc_ns_var), flag)
            self.t_parts = self.t_parts + [self.dc_part]
            self.quantify = self.quantify + [problem.dc_var]
            self.ns_vars = self.ns_vars + [problem.dc_ns_var]
            self.rename = dict(self.rename)
            self.rename[problem.dc_ns_var] = problem.dc_var
            self.init_cube = mgr.apply_and(
                self.init_cube, mgr.apply_not(mgr.var_node(problem.dc_var))
            )
        # Interned quantification set for the per-expansion ∃ns domain
        # computation (revalidates lazily across dynamic reordering).
        self.ns_qs = mgr.quant_set(self.ns_vars)
        # Incremental completion: per-output projection sets and memo
        # tables.  R_j = state variables feeding neither the u functions
        # nor ¬C_j; ∃R_j.ψ is the memo key for output j's Q image.
        self.memo_hits = 0
        self.memo_misses = 0
        self._q_memo: list[dict[int, int]] = [dict() for _ in self.nonconf]
        self._q_proj: list[object | None] = []
        # Projecting over plain product cs variables only is sound in
        # both modes: the DC1 flag of the no-trim ablation is not in
        # all_cs_vars(), so a flagged ψ is never projected onto a
        # flag-free class.
        cs_set = set(problem.all_cs_vars())
        for nc in self.nonconf:
            supp: set[int] = set()
            for part in [*self.u_parts, nc]:
                supp |= mgr.support(part)
            drop = sorted(cs_set - supp)
            self._q_proj.append(mgr.quant_set(drop) if drop else None)
        # Every ψ is a function of the product cs variables, so the
        # quantification schedules can be computed once and reused for
        # every subset expansion; plan_image interns every retire set as
        # a QuantSet, so each of the thousands of and_exists fold steps
        # skips the per-call level sort/intern pass.
        cs_support = set(self.quantify)
        self._pool = None
        self._p_sharded = None
        self._q_remote: list[tuple[int, int]] = []
        # Shard-resident subset states: ψ edge -> worker handle for the
        # batch in flight, plus the transfer instrumentation the
        # acceptance tests assert on (each ψ serialized exactly once).
        self._psi_handles: dict[int, int] = {}
        self._psi_serialized: dict[int, int] = {}
        self._resident_peak = 0
        # A caller-owned pool (the job server reuses one warm pool across
        # jobs, resetting it between solves) is borrowed, not owned:
        # ``close`` leaves it running for the next job.
        self._owns_pool = pool is None
        # Oracle-level shard options are popped before the rest is used
        # as pool config: ``steal`` (default on) enables the
        # work-stealing dispatcher for split-mode P batches,
        # ``sift_parts`` lets each worker sift its resident partition
        # into its own order profile after plan setup.
        shard_opts = dict(shard_opts or {})
        self._steal = bool(shard_opts.pop("steal", True))
        sift_parts = bool(shard_opts.pop("sift_parts", False))
        self._shard_opts = shard_opts
        if shards > 1:
            from repro.shard import ShardPool, ShardedImage
            from repro.shard.plan import load_parts, make_plan

            self.p_plan = None
            self.q_plans = None
            if pool is None:
                # Workers inherit the coordinator's node budget and
                # runtime policies unless shard_opts overrides them: the
                # CNC mechanism (max_nodes) must bound the shard managers
                # too, or an exploding conjunction would grow unchecked
                # in a worker the resource limit cannot see.
                opts = {
                    "max_nodes": mgr.max_nodes,
                    "gc": mgr.gc_policy.mode,
                    "reorder": mgr.reorder_policy.mode,
                    "backend": getattr(mgr, "backend_name", "python"),
                }
                opts.update(shard_opts)
                pool = ShardPool(shards, mgr.var_order(), **opts)
            elif pool.num_shards != shards:
                raise EquationError(
                    f"external pool has {pool.num_shards} shards, "
                    f"solve requested {shards}"
                )
            self._pool = pool
            try:
                # P_ψ: partition clusters across the shards, joined here.
                self._p_sharded = ShardedImage(
                    pool,
                    mgr,
                    self.u_parts + self.t_parts,
                    self.quantify,
                    cs_support,
                )
                # Q_ψ: one *complete* image per output, dealt
                # round-robin — each shard holds the u-parts plus its
                # outputs' ¬C_j parts.
                u_handles = [
                    load_parts(pool, k, mgr, self.u_parts)
                    for k in range(pool.num_shards)
                ]
                for j, nc in enumerate(self.nonconf):
                    k = j % pool.num_shards
                    (nc_handle,) = load_parts(pool, k, mgr, [nc])
                    plan_id = make_plan(
                        pool,
                        k,
                        mgr,
                        u_handles[k] + [nc_handle],
                        self.quantify,
                        cs_support,
                    )
                    self._q_remote.append((k, plan_id))
                if self._p_sharded.mode == "race":
                    # Settle the speculative join before any pipelined
                    # batch traffic: race the two joins on the initial
                    # subset state and commit the winner.
                    self._p_sharded.resolve_race(self.init_cube)
                if sift_parts:
                    # Per-shard order autonomy: every worker sifts its
                    # resident partition (parts + plans keep their
                    # edges) and the pool records the per-shard order
                    # profiles for reuse across ``reset``.
                    pool.sift_profiles()
            except BaseException:
                # Setup failed: reap the workers deterministically
                # instead of leaving them to __del__ timing.
                self.close()
                raise
        elif self.schedule:
            self.p_plan = plan_image(
                mgr, self.u_parts + self.t_parts, self.quantify, cs_support
            )
            self.q_plans = [
                plan_image(mgr, self.u_parts + [nc], self.quantify, cs_support)
                for nc in self.nonconf
            ]
        else:
            self.p_plan = None
            self.q_plans = None

    # ------------------------------------------------------------------ #

    def live_roots(self) -> list[int]:
        """Every BDD the oracle reuses across expansions (GC roots).

        The subset driver pins these, which also makes them safe across
        GC-triggered in-place reordering: sifting preserves all pinned
        edges, and the reusable image plans stay valid because their
        retire sets are variable indices, not levels.  Completion-memo
        entries are created later and pin themselves as they are
        inserted.
        """
        roots = [*self.u_parts, *self.t_parts, *self.nonconf, self.init_cube]
        if self.p_plan is not None:
            plan, _ = self.p_plan
            roots.extend(part for part, _ in plan)
            for plan, _ in self.q_plans:
                roots.extend(part for part, _ in plan)
        if not self.trim:
            roots.append(self.dc_part)
        return roots

    def initial(self) -> int:
        return self.init_cube

    def is_accepting(self, psi: int) -> bool:
        """A subset is accepting unless it contains a DC1-flagged state."""
        if self.trim:
            return True
        dc = self.mgr.var_node(self.problem.dc_var)
        return self.mgr.apply_and(psi, dc) == FALSE

    def run_stats(self) -> dict:
        """Oracle instrumentation merged into ``SubsetStats.extra``."""
        stats = {
            "completion_memo_hits": self.memo_hits,
            "completion_memo_misses": self.memo_misses,
        }
        if self._pool is not None:
            counts = self._psi_serialized
            stats["psi_serializations"] = sum(counts.values())
            stats["psi_serializations_max"] = max(counts.values(), default=0)
            stats["psi_resident_peak"] = self._resident_peak
            # Snapshot the command counters *before* the stats broadcast
            # below bumps them — callers assert on exact op counts.
            stats["pool_op_counts"] = dict(self._pool.op_counts)
            if self._p_sharded is not None:
                stats["work_steals"] = self._p_sharded.steals
                if self._p_sharded.race_outcome is not None:
                    stats["join_race"] = dict(self._p_sharded.race_outcome)
            if self._pool.profiles:
                stats["shard_order_profiles"] = len(self._pool.profiles)
            if self._shard_opts.get("resident_budget"):
                spills = reloads = 0
                for shard_stats in self._pool.stats():
                    spills += shard_stats.get("psi_spills", 0)
                    reloads += shard_stats.get("psi_reloads", 0)
                # A worker spill is by definition an eviction from its
                # resident registry, so the two totals coincide here.
                stats["psi_spills"] = spills
                stats["psi_reloads"] = reloads
                stats["resident_evictions"] = spills
        return stats

    # -- the incremental completion step ------------------------------- #

    def _q_key(self, j: int, psi: int) -> int:
        """Memo key for output ``j``: ψ projected onto relevant latches."""
        proj = self._q_proj[j]
        return psi if proj is None else self.mgr.exists(psi, proj)

    def _q_insert(self, j: int, key: int, value: int) -> int:
        """Record ``Q^j`` for a cofactor class; pins both edges."""
        mgr = self.mgr
        mgr.ref(key)
        mgr.ref(value)
        self._q_memo[j][key] = value
        return value

    def _q_output(self, j: int, psi: int) -> int:
        """``Q^j_ψ`` through the memo (in-process, scheduled flow)."""
        mgr = self.mgr
        key = self._q_key(j, psi)
        hit = self._q_memo[j].get(key)
        if hit is not None:
            self.memo_hits += 1
            return hit
        self.memo_misses += 1
        plan, leftover = self.q_plans[j]
        # Imaging the projection rather than ψ itself is the incremental
        # step: the irrelevant latches are already gone from the
        # constraint, and the result is identical by construction.
        with mgr.protect(key):
            img = image_with_plan(mgr, plan, leftover, key, gc=True)
        return self._q_insert(j, key, img)

    def non_conformance(self, psi: int) -> int:
        """``Q_ψ(u,v)``, computed one output at a time."""
        mgr = self.mgr
        q = FALSE
        if self._pool is not None:
            if not self._q_remote:
                return FALSE
            # Submit every per-output image before collecting anything:
            # the shards compute their outputs' images concurrently.
            # (Direct calls ship a snapshot; the batched expansion path
            # uses the resident-handle protocol instead.)
            blob = dump_nodes(mgr, [psi])
            for shard, plan_id in self._q_remote:
                self._pool.submit(shard, ("image", plan_id, blob))
            for shard, _ in self._q_remote:
                snapshot = self._pool.collect(shard)
                (q_j,) = load_nodes(mgr, snapshot)
                q = mgr.apply_or(q, q_j)
            return q
        if self.q_plans is not None:
            for j in range(len(self.nonconf)):
                # The accumulator must survive collections triggered
                # inside the next image fold.
                with mgr.protect(q):
                    q_j = self._q_output(j, psi)
                q = mgr.apply_or(q, q_j)
            return q
        for nc in self.nonconf:
            q = mgr.apply_or(
                q,
                image_partitioned(
                    mgr,
                    self.u_parts + [nc],
                    psi,
                    self.quantify,
                    schedule=False,
                ),
            )
        return q

    def close(self) -> None:
        """Release memo pins and shut down the shard pool (idempotent).

        A borrowed pool (``pool=`` passed at construction) is left
        running: its owner resets it (clearing worker-side plans and
        resident registries) before the next solve.
        """
        mgr = self.mgr
        for memo in self._q_memo:
            for key, value in memo.items():
                mgr.deref(key)
                mgr.deref(value)
            memo.clear()
        if self._pool is not None:
            if self._owns_pool:
                self._pool.close()
            self._pool = None
            self._p_sharded = None
            self._q_remote = []
            self._psi_handles.clear()

    def successor_image(self, psi: int) -> int:
        """``P_ψ(u,v,ns)`` — the partitioned image of ψ."""
        if self._p_sharded is not None:
            return self._p_sharded.run(psi)
        if self.p_plan is not None:
            plan, leftover = self.p_plan
            return image_with_plan(self.mgr, plan, leftover, psi, gc=True)
        return image_partitioned(
            self.mgr,
            self.u_parts + self.t_parts,
            psi,
            self.quantify,
            schedule=False,
        )

    # -- expansion ------------------------------------------------------ #

    def expand(self, psi: int) -> tuple[list[SubsetEdge], int]:
        """Single-item adapter over :meth:`expand_batch`."""
        return self.expand_batch([psi])[0]

    def expand_batch(
        self, psis: list[int]
    ) -> list[tuple[list[SubsetEdge], int]]:
        """Expand a frontier batch (the driver's batched oracle protocol)."""
        if self._pool is not None:
            return self._expand_batch_sharded(psis)
        with obs_span("expand_batch", size=len(psis)):
            return expand_batch_pinned(self.mgr, psis, self._expand_one)

    def _expand_one(self, psi: int) -> tuple[list[SubsetEdge], int]:
        mgr = self.mgr
        # ψ and the successor image must survive collections triggered
        # inside the image folds (everything after the last fold runs
        # GC-free, so plain locals are safe from there on).
        with mgr.protect(psi):
            p = self.successor_image(psi)
            if self.trim:
                with mgr.protect(p):
                    q = self.non_conformance(psi)
        if self.trim:
            return self._finish_trim(p, q)
        return self._finish_notrim(p)

    def _finish_trim(self, p: int, q: int) -> tuple[list[SubsetEdge], int]:
        """Edges + DCA condition from ``P_ψ`` and ``Q_ψ`` (GC-free tail)."""
        mgr = self.mgr
        p_good = mgr.apply_diff(p, q)
        edges = [
            SubsetEdge(cond=cond, successor=mgr.rename(leaf, self.rename))
            for leaf, cond in split_by_vars(mgr, p_good, self.uv_vars).items()
        ]
        domain = mgr.exists(p, self.ns_qs)
        dca = mgr.apply_diff(mgr.apply_not(q), domain)
        return edges, dca

    def _finish_notrim(self, p: int) -> tuple[list[SubsetEdge], int]:
        """Ablation: no trimming — every class is expanded; acceptance of
        the successor is decided by its DC1 flag."""
        mgr = self.mgr
        edges = []
        for leaf, cond in split_by_vars(mgr, p, self.uv_vars).items():
            successor = mgr.rename(leaf, self.rename)
            edges.append(
                SubsetEdge(
                    cond=cond,
                    successor=successor,
                    accepting=self.is_accepting(successor),
                )
            )
        domain = mgr.exists(p, self.ns_qs)
        return edges, mgr.apply_not(domain)

    # -- the sharded batched expansion ---------------------------------- #

    def _expand_batch_sharded(
        self, psis: list[int]
    ) -> list[tuple[list[SubsetEdge], int]]:
        """Expand a batch on the shard pool with resident ψ handles.

        Wire discipline (per shard pipe, strictly FIFO): ``retain`` the
        batch's new subset states, submit every P image, submit every
        deduplicated Q image, submit the ``release`` — *then* collect
        the replies in the same order.  The coordinator never collects
        before the whole batch is submitted, so all workers compute
        concurrently across the entire batch; and no coordinator-side
        garbage collection can run in here (none of the joins collect),
        so the per-ψ intermediates are safe as plain locals.

        When the P image is a split-mode join with stealing enabled
        (the default), the P phase instead runs through the blocking
        work-stealing dispatcher
        (:meth:`~repro.shard.plan.ShardedImage.run_resident_batch`),
        which needs the pipes to itself: the retain acks are collected
        up front, and the Q/release traffic is pipelined after the P
        results are in.  The Q dedup, the release discipline and the
        assembled results are identical either way.
        """
        mgr = self.mgr
        pool = self._pool
        nshards = pool.num_shards
        n_out = len(self.nonconf)
        stealing = self._steal and self._p_sharded.mode == "split"

        # 1. Residency: each new ψ is serialized exactly once and
        #    retained in every worker's resident registry.
        retained: list[int] = []
        with obs_span("psi_retain", batch=len(psis)) as retain_span:
            for psi in psis:
                if psi in self._psi_handles:
                    continue
                handle = pool.new_handle()
                blob = dump_nodes(mgr, [psi])
                self._psi_serialized[psi] = (
                    self._psi_serialized.get(psi, 0) + 1
                )
                for k in range(nshards):
                    pool.submit(k, ("retain", handle, blob))
                self._psi_handles[psi] = handle
                retained.append(handle)
            retain_span.set(serialized=len(retained))
        self._resident_peak = max(self._resident_peak, len(self._psi_handles))
        handles = [self._psi_handles[psi] for psi in psis]

        # 2. P images.  Stealing: drain the retain acks, then let the
        #    work-stealing dispatcher own the pipes until every P image
        #    is joined.  Static: submit and collect later, in FIFO order.
        p_results: list[int] | None = None
        collect_p = None
        if stealing:
            with obs_span("p_images", mode="steal", batch=len(psis)):
                for _handle in retained:
                    for k in range(nshards):
                        pool.collect(k)
                p_results = self._p_sharded.run_resident_batch(
                    list(zip(handles, psis))
                )
        else:
            collect_p = self._p_sharded.submit_resident(
                list(zip(handles, psis))
            )

        # 3. Q images, deduplicated through the completion memo: a batch
        #    submits one remote image per *new* cofactor class.
        q_vals: list[list[int]] = [[FALSE] * n_out for _ in psis]
        q_submitted: list[tuple[int, list[tuple[int, list[int]]]]] = []
        if self.trim and n_out:
            for j in range(n_out):
                memo = self._q_memo[j]
                misses: list[tuple[int, list[int]]] = []
                miss_handles: list[int] = []
                by_key: dict[int, list[int]] = {}
                for i, psi in enumerate(psis):
                    key = self._q_key(j, psi)
                    hit = memo.get(key)
                    if hit is not None:
                        self.memo_hits += 1
                        q_vals[i][j] = hit
                        continue
                    group = by_key.get(key)
                    if group is not None:
                        # A sibling in this batch already scheduled this
                        # cofactor class.
                        self.memo_hits += 1
                        group.append(i)
                        continue
                    self.memo_misses += 1
                    group = [i]
                    by_key[key] = group
                    misses.append((key, group))
                    miss_handles.append(handles[i])
                if misses:
                    shard, plan_id = self._q_remote[j]
                    pool.submit(shard, ("expand_batch", plan_id, miss_handles))
                    q_submitted.append((j, misses))

        # 4. Release: every subset state is expanded exactly once, so
        #    its resident handle dies with this batch.  (The driver's
        #    seen-table guarantees unique batches; dedup anyway so a
        #    direct caller repeating a ψ cannot double-release.)
        unique_handles = list(dict.fromkeys(handles))
        for k in range(nshards):
            pool.submit(k, ("release", unique_handles))
        for psi in dict.fromkeys(psis):
            del self._psi_handles[psi]

        # -- collect, in per-pipe submission order ---------------------- #
        if not stealing:
            with obs_span("p_images", mode="static", batch=len(psis)):
                for _handle in retained:
                    for k in range(nshards):
                        pool.collect(k)
                p_results = collect_p()
        with obs_span("q_images", outputs=len(q_submitted)):
            for j, misses in q_submitted:
                shard, _plan_id = self._q_remote[j]
                snaps = pool.collect(shard)
                for (key, idxs), snap in zip(misses, snaps):
                    (q_j,) = load_nodes(mgr, snap)
                    self._q_insert(j, key, q_j)
                    for i in idxs:
                        q_vals[i][j] = q_j
        for k in range(nshards):
            pool.collect(k)

        # -- assemble per-ψ results (GC-free) --------------------------- #
        results: list[tuple[list[SubsetEdge], int]] = []
        for i in range(len(psis)):
            p = p_results[i]
            if self.trim:
                q = FALSE
                for j in range(n_out):
                    q = mgr.apply_or(q, q_vals[i][j])
                results.append(self._finish_trim(p, q))
            else:
                results.append(self._finish_notrim(p))
        return results
