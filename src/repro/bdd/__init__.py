"""Shared ROBDD engine (the paper's CUDD substrate, reimplemented).

Public surface:

* :class:`BddManager` — shared nodes with complement edges, a unified
  operator-tagged computed table, reference-counted garbage collection
  (``ref``/``deref``/``protect``/``collect_garbage``), Boolean
  connectives, quantification and the fused relational product
  ``and_exists`` that powers partitioned image computation.
* :class:`Function` — operator-overloaded wrapper for user code.
* :class:`GcPolicy` / :class:`ReorderPolicy` — the adaptive runtime:
  reclaim-ratio-driven garbage-collection tuning and GC-triggered
  in-place dynamic variable reordering (:mod:`repro.bdd.policy`).
* :mod:`repro.bdd.cube` — counting / enumeration / picking of cubes.
* :mod:`repro.bdd.reorder` — in-place sifting (:func:`sift`,
  :func:`swap_levels`), plus rebuild-based transfer/reordering and
  mark-and-sweep compaction.
* :mod:`repro.bdd.io` — dot export and JSON (de)serialisation.
* :mod:`repro.bdd.backends` — the pluggable-backend registry:
  :func:`create_manager` constructs a manager on any registered
  :class:`~repro.bdd.backends.protocol.BddBackend` (``"python"`` — the
  reference kernel here — or the native ``"buddy"`` ctypes adapter),
  degrading gracefully to pure Python when a native library is absent.
"""

from repro.bdd.backends import (
    BACKEND_CHOICES,
    BackendFallbackWarning,
    BddBackend,
    available_backends,
    backend_available,
    create_manager,
    register_backend,
)
from repro.bdd.cube import (
    iter_cubes,
    iter_minterms,
    pick_cube,
    pick_minterm,
    sat_count,
)
from repro.bdd.function import Function
from repro.bdd.io import (
    dump_function,
    dump_nodes,
    load_function,
    load_nodes,
    to_dot,
)
from repro.bdd.manager import FALSE, TRUE, BddManager
from repro.bdd.policy import GcPolicy, ReorderPolicy
from repro.bdd.reorder import (
    SiftResult,
    compact,
    greedy_sift_order,
    reorder,
    sift,
    swap_levels,
    transfer,
)

__all__ = [
    "BACKEND_CHOICES",
    "FALSE",
    "TRUE",
    "BackendFallbackWarning",
    "BddBackend",
    "BddManager",
    "Function",
    "available_backends",
    "backend_available",
    "create_manager",
    "register_backend",
    "GcPolicy",
    "ReorderPolicy",
    "SiftResult",
    "compact",
    "dump_function",
    "dump_nodes",
    "greedy_sift_order",
    "iter_cubes",
    "iter_minterms",
    "load_function",
    "load_nodes",
    "pick_cube",
    "pick_minterm",
    "reorder",
    "sat_count",
    "sift",
    "swap_levels",
    "to_dot",
    "transfer",
]
