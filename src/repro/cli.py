"""Command-line interface.

Subcommands::

    repro-lang-eqn solve  --blif FILE --x-latches a,b [--method ...]
    repro-lang-eqn table1 [--rows s27,count6] [--paper]
    repro-lang-eqn info   --blif FILE
    repro-lang-eqn reach  --blif FILE
    repro-lang-eqn bench  [--smoke] [--baseline F] [...]
    repro-lang-eqn stg    --blif FILE [--kiss-out F] [--dot-out F]
    repro-lang-eqn serve  --cache-dir DIR [--host H] [--port P]
    repro-lang-eqn submit --blif FILE --x-latches a,b [--url U] [...]
    repro-lang-eqn jobs   [--url U] [--job ID] [--cancel ID] [--shutdown]

``solve`` computes the CSF of the selected latches of a BLIF circuit
(optionally synthesising a replacement circuit with ``--implement-out``)
and can export the result as KISS2/DOT; ``table1`` reproduces the
paper's experiment; ``info`` prints circuit statistics; ``reach`` runs
symbolic reachability; ``bench`` runs the recorded benchmark suites
(all flags forwarded to :mod:`repro.bench.driver`); ``stg`` extracts
the state transition graph; ``serve`` runs the persistent job server
(:mod:`repro.serve`) with its content-addressed solve cache, and
``submit`` / ``jobs`` are its clients.
"""

from __future__ import annotations

import argparse
import sys

from repro._version import __version__


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lang-eqn",
        description=(
            "Language-equation solving with partitioned representations "
            "(reproduction of Mishchenko et al., DATE 2005)"
        ),
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    def add_obs_flags(cmd: argparse.ArgumentParser) -> None:
        cmd.add_argument(
            "--trace",
            metavar="FILE",
            help="write a Chrome trace-event JSON span trace to this file",
        )
        cmd.add_argument(
            "--log-level",
            default="warning",
            choices=("debug", "info", "warning", "error"),
            help="structured-log threshold for repro.* loggers",
        )
        cmd.add_argument(
            "--log-json",
            action="store_true",
            help="emit structured logs as JSON lines",
        )

    solve = sub.add_parser("solve", help="compute the CSF of a latch split")
    add_obs_flags(solve)
    solve.add_argument("--blif", required=True, help="input circuit (BLIF)")
    solve.add_argument(
        "--x-latches",
        required=True,
        help="comma-separated latch output names moved to the unknown",
    )
    solve.add_argument(
        "--method",
        default="partitioned",
        choices=("partitioned", "monolithic", "explicit"),
    )
    solve.add_argument("--max-seconds", type=float, default=None)
    solve.add_argument("--max-nodes", type=int, default=None)
    solve.add_argument(
        "--reorder",
        default="off",
        choices=("off", "auto", "sift"),
        help="GC-triggered in-place dynamic variable reordering",
    )
    solve.add_argument(
        "--gc",
        default="static",
        choices=("static", "adaptive"),
        help="garbage-collection tuning (adaptive backs off unprofitable sweeps)",
    )
    solve.add_argument(
        "--shards",
        type=int,
        default=1,
        help=(
            "worker processes for the partitioned flow's image computations "
            "(1 = in-process; N≥2 shards the partition clusters)"
        ),
    )
    solve.add_argument(
        "--frontier",
        default="dfs",
        # Literal (not repro.eqn.subset.STRATEGIES) to keep the parser
        # import-light; test_cli pins the two in lockstep.
        choices=("dfs", "bfs", "size"),
        help="frontier ordering strategy of the subset construction",
    )
    solve.add_argument(
        "--batch",
        type=int,
        default=1,
        help=(
            "subset states expanded per batch (1 = classic worklist; "
            "larger batches pipeline sharded image computations and "
            "share completion work between sibling subsets)"
        ),
    )
    solve.add_argument(
        "--product-order",
        default="stacked",
        choices=("stacked", "interleaved"),
        help=(
            "product variable-order policy: stacked keeps all F latch "
            "pairs above all S pairs; interleaved groups each latch's "
            "F/S copies together (a node-count lever for tightly "
            "coupled splits); results are identical"
        ),
    )
    solve.add_argument(
        "--backend",
        default="python",
        # Literal (not repro.bdd.backends.BACKEND_CHOICES) to keep the
        # parser import-light; test_backends pins the two in lockstep.
        choices=("python", "buddy"),
        help=(
            "BDD kernel (python = pure-Python reference; buddy = native "
            "ctypes adapter, falls back to python with a warning when "
            "the shared library is absent); results are identical"
        ),
    )
    solve.add_argument(
        "--u-signals",
        help=(
            "comma-separated original signals exposed to the unknown on "
            "the u wires (default: all inputs plus all kept latches)"
        ),
    )
    solve.add_argument(
        "--resident-budget",
        type=int,
        default=None,
        help=(
            "bounded-memory residency: node budget for resident subset "
            "states; cold expanded states spill to a content-addressed "
            "store and the result stays byte-identical"
        ),
    )
    solve.add_argument(
        "--spill-dir",
        default=None,
        help=(
            "directory for spilled subset states (default: a private "
            "temporary directory, removed after the solve)"
        ),
    )
    solve.add_argument(
        "--compose",
        action="store_true",
        help=(
            "compositional solving: when the split decomposes into "
            "independent components with all (u,v) letters in one of "
            "them, solve only that sub-equation (language-identical; "
            "falls back to the direct solve otherwise)"
        ),
    )
    solve.add_argument("--no-verify", action="store_true", help="skip formal checks")
    solve.add_argument("--kiss-out", help="write the CSF as KISS2 to this file")
    solve.add_argument("--dot-out", help="write the CSF as Graphviz dot")
    solve.add_argument(
        "--implement-out",
        help="extract a sub-solution FSM and write its circuit (BLIF)",
    )

    table1 = sub.add_parser("table1", help="reproduce the paper's Table 1")
    table1.add_argument("--rows", help="comma-separated case names (default: all)")
    table1.add_argument(
        "--paper", action="store_true", help="also print the paper's numbers"
    )

    info = sub.add_parser("info", help="print circuit statistics")
    info.add_argument("--blif", required=True)

    reach = sub.add_parser("reach", help="symbolic reachability analysis")
    add_obs_flags(reach)
    reach.add_argument("--blif", required=True)
    reach.add_argument(
        "--no-schedule",
        action="store_true",
        help="disable early-quantification scheduling",
    )
    reach.add_argument(
        "--reorder",
        default="off",
        choices=("off", "auto", "sift"),
        help="GC-triggered in-place dynamic variable reordering",
    )
    reach.add_argument(
        "--gc",
        default="static",
        choices=("static", "adaptive"),
        help="garbage-collection tuning (adaptive backs off unprofitable sweeps)",
    )
    reach.add_argument(
        "--shards",
        type=int,
        default=1,
        help=(
            "worker processes for the image steps "
            "(1 = in-process; N≥2 shards the relation parts)"
        ),
    )
    reach.add_argument(
        "--backend",
        default="python",
        choices=("python", "buddy"),
        help="BDD kernel (see `solve --help`); results are identical",
    )

    # ``bench`` forwards everything to repro.bench.driver's own parser
    # (main() intercepts it before this parser runs; registering it here
    # keeps it in the --help subcommand listing).
    sub.add_parser(
        "bench",
        help="run the benchmark suites (wraps benchmarks/run_all.py)",
        add_help=False,
    )

    serve = sub.add_parser("serve", help="run the persistent job server")
    serve.add_argument(
        "--cache-dir",
        required=True,
        help="root of the content-addressed result cache",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8642)
    serve.add_argument(
        "--max-entries",
        type=int,
        default=None,
        help="LRU-evict cached results beyond this count (default: unbounded)",
    )
    serve.add_argument(
        "--verbose", action="store_true", help="log every HTTP request"
    )
    serve.add_argument(
        "--log-level",
        default="warning",
        choices=("debug", "info", "warning", "error"),
        help="structured-log threshold for repro.* loggers",
    )
    serve.add_argument(
        "--log-json",
        action="store_true",
        help="emit structured logs as JSON lines",
    )

    submit = sub.add_parser("submit", help="submit a solve to a running server")
    submit.add_argument("--url", default="http://127.0.0.1:8642")
    submit.add_argument("--blif", required=True, help="input circuit (BLIF)")
    submit.add_argument(
        "--x-latches",
        required=True,
        help="comma-separated latch output names moved to the unknown",
    )
    submit.add_argument(
        "--method",
        default="partitioned",
        choices=("partitioned", "monolithic"),
    )
    submit.add_argument("--max-seconds", type=float, default=None)
    submit.add_argument("--max-nodes", type=int, default=None)
    submit.add_argument("--reorder", default="off", choices=("off", "auto", "sift"))
    submit.add_argument("--gc", default="static", choices=("static", "adaptive"))
    submit.add_argument("--shards", type=int, default=1)
    submit.add_argument("--frontier", default="dfs", choices=("dfs", "bfs", "size"))
    submit.add_argument("--batch", type=int, default=1)
    submit.add_argument(
        "--product-order",
        default="stacked",
        choices=("stacked", "interleaved"),
        help="product variable-order policy (part of the cache key)",
    )
    submit.add_argument(
        "--backend",
        default="python",
        choices=("python", "buddy"),
        help=(
            "BDD kernel the server solves on (a runtime knob: it never "
            "changes the result or the cache key)"
        ),
    )
    submit.add_argument(
        "--checkpoint-every",
        type=int,
        default=0,
        help="persist a resumable frontier checkpoint every N batches",
    )
    submit.add_argument(
        "--checkpoint-seconds",
        type=float,
        default=0.0,
        help=(
            "also checkpoint every S seconds of wall clock (whichever "
            "cadence fires first; 0 disables)"
        ),
    )
    submit.add_argument(
        "--resident-budget",
        type=int,
        default=None,
        help=(
            "bounded-memory residency on the server (a runtime knob: "
            "it never changes the result or the cache key)"
        ),
    )
    submit.add_argument(
        "--no-resume",
        action="store_true",
        help="ignore any persisted checkpoint for this problem",
    )
    submit.add_argument(
        "--no-wait",
        action="store_true",
        help="print the job id and return without polling",
    )
    submit.add_argument(
        "--kiss-out", help="write the resulting CSF as KISS2 to this file"
    )

    jobs = sub.add_parser("jobs", help="inspect or control a running server")
    jobs.add_argument("--url", default="http://127.0.0.1:8642")
    jobs.add_argument("--job", help="show one job (with its event stream)")
    jobs.add_argument("--cancel", metavar="ID", help="cancel a job")
    jobs.add_argument(
        "--cache", action="store_true", help="show cache statistics"
    )
    jobs.add_argument(
        "--metrics",
        action="store_true",
        help="dump the server's Prometheus /metrics exposition",
    )
    jobs.add_argument(
        "--shutdown", action="store_true", help="gracefully stop the server"
    )

    stg = sub.add_parser("stg", help="extract the state transition graph")
    stg.add_argument("--blif", required=True)
    stg.add_argument("--max-states", type=int, default=100_000)
    stg.add_argument("--kiss-out", help="write the automaton as KISS2")
    stg.add_argument("--dot-out", help="write the automaton as Graphviz dot")
    stg.add_argument(
        "--complete", action="store_true", help="add the DC completion state"
    )
    return parser


def _setup_obs(args: argparse.Namespace):
    """Configure logging and (optionally) install a tracer for a command."""
    from repro.obs.log import configure
    from repro.obs.trace import install_tracer

    configure(args.log_level, json_lines=args.log_json)
    return install_tracer() if args.trace else None


def _export_trace(tracer, path: str) -> None:
    from repro.obs.trace import uninstall_tracer

    tracer.export(path)
    uninstall_tracer()
    print(f"  trace written to {path} ({len(tracer)} events)")


def _cmd_solve(args: argparse.Namespace) -> int:
    from repro.network.blif import read_blif
    from repro.eqn.solver import solve_latch_split, verify_solution
    from repro.util.limits import ResourceLimit

    tracer = _setup_obs(args)
    net = read_blif(args.blif)
    x_latches = [name for name in args.x_latches.split(",") if name]
    if args.shards > 1 and args.method != "partitioned":
        print(
            f"error: --shards requires --method partitioned (got {args.method})",
            file=sys.stderr,
        )
        return 2
    limit = None
    if args.max_seconds is not None or args.max_nodes is not None:
        limit = ResourceLimit(max_seconds=args.max_seconds, max_nodes=args.max_nodes)
    u_signals = None
    if args.u_signals:
        u_signals = [name for name in args.u_signals.split(",") if name]
    result = solve_latch_split(
        net,
        x_latches,
        method=args.method,
        u_signals=u_signals,
        limit=limit,
        reorder=args.reorder,
        gc=args.gc,
        backend=args.backend,
        product_order=args.product_order,
        shards=args.shards,
        frontier=args.frontier,
        batch=args.batch,
        resident_budget=args.resident_budget,
        spill_dir=args.spill_dir,
        compose=args.compose,
    )
    print(result.summary())
    if result.stats is not None:
        print(
            f"  subsets={result.stats.subsets} edges={result.stats.edges} "
            f"batches={result.stats.batches} peak_nodes={result.stats.peak_nodes}"
        )
        memo_hits = result.stats.extra.get("completion_memo_hits")
        if memo_hits:
            print(
                f"  completion memo: hits={memo_hits} "
                f"misses={result.stats.extra.get('completion_memo_misses', 0)}"
            )
        if "psi_serializations" in result.stats.extra:
            print(
                f"  shard transfers: psi_serializations="
                f"{result.stats.extra['psi_serializations']} "
                f"(max per subset "
                f"{result.stats.extra['psi_serializations_max']})"
            )
        if result.stats.extra.get("resident_budget"):
            extra = result.stats.extra
            print(
                f"  residency: budget={extra['resident_budget']} "
                f"spills={extra.get('psi_spills', 0)} "
                f"reloads={extra.get('psi_reloads', 0)} "
                f"evictions={extra.get('resident_evictions', 0)} "
                f"resident_peak={extra.get('resident_nodes_peak', 0)}"
            )
        if result.options.get("compose"):
            extra = result.stats.extra
            print(
                f"  compose: components={extra.get('compose_components')} "
                f"solved_latches={extra.get('compose_solved_latches')} "
                f"skipped_latches={extra.get('compose_skipped_latches')}"
            )
        elif args.compose:
            print("  compose: not applicable (solved directly)")
    mgr_stats = result.problem.manager.stats
    if mgr_stats["gc_runs"] or mgr_stats["reorder_runs"]:
        print(
            f"  kernel: gc_runs={mgr_stats['gc_runs']} "
            f"reclaim_ratio_avg={mgr_stats['reclaim_ratio_avg']:.2f} "
            f"reorders={mgr_stats['reorder_runs']} "
            f"swaps={mgr_stats['reorder_swaps']}"
        )
    if tracer is not None:
        _export_trace(tracer, args.trace)
    if not args.no_verify:
        report = verify_solution(result)
        print(f"  verification: {report.summary()}")
        if not report.ok:
            return 1
    if args.kiss_out:
        from repro.automata.kiss import write_kiss

        with open(args.kiss_out, "w", encoding="utf-8") as handle:
            handle.write(write_kiss(result.csf))
        print(f"  CSF written to {args.kiss_out} (KISS2)")
    if args.dot_out:
        from repro.automata.dot import automaton_to_dot

        with open(args.dot_out, "w", encoding="utf-8") as handle:
            handle.write(automaton_to_dot(result.csf))
        print(f"  CSF written to {args.dot_out} (dot)")
    if args.implement_out:
        from repro.eqn.implement import implement_csf
        from repro.network.blif import save_blif

        impl = implement_csf(
            result.csf,
            result.problem.u_names,
            result.problem.v_names,
            name=f"{net.name}_impl",
        )
        save_blif(impl.network, args.implement_out)
        print(
            f"  implementation ({impl.state_count} states, "
            f"{impl.network.num_latches} latches) written to {args.implement_out}"
        )
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.bench.suite import TABLE1_CASES, case_by_name
    from repro.eqn.table1 import PAPER_TABLE1, render_table1, run_table1

    if args.rows:
        cases = [case_by_name(name) for name in args.rows.split(",") if name]
    else:
        cases = TABLE1_CASES
    rows = run_table1(cases, verbose=True)
    print()
    print(render_table1(rows))
    if args.paper:
        print()
        print(PAPER_TABLE1)
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    from repro.network.blif import read_blif

    net = read_blif(args.blif)
    print(f"model:   {net.name}")
    print(f"i/o/cs:  {net.stats()}")
    print(f"inputs:  {' '.join(net.inputs)}")
    print(f"outputs: {' '.join(net.outputs)}")
    print(f"latches: {' '.join(net.latch_names())}")
    print(f"nodes:   {len(net.nodes)}")
    return 0


def _cmd_reach(args: argparse.Namespace) -> int:
    from repro.bdd.backends import create_manager
    from repro.bdd.policy import GcPolicy, ReorderPolicy
    from repro.network.bddbuild import build_network_bdds
    from repro.network.blif import read_blif
    from repro.symb.reach import network_reachable_states

    tracer = _setup_obs(args)
    net = read_blif(args.blif)
    mgr = create_manager(
        args.backend,
        gc_policy=GcPolicy(mode=args.gc),
        reorder_policy=ReorderPolicy(mode=args.reorder),
    )
    input_vars = {name: mgr.add_var(name) for name in net.inputs}
    cs, ns = {}, {}
    for name in net.latches:
        cs[name] = mgr.add_var(name)
        ns[name] = mgr.add_var(f"{name}'")
    bdds = build_network_bdds(net, mgr, input_vars, cs)
    result = network_reachable_states(
        bdds, ns_vars=ns, schedule=not args.no_schedule, shards=args.shards
    )
    stats = mgr.stats
    print(f"model:            {net.name} ({net.stats()})")
    print(f"reachable states: {result.state_count} of {2 ** net.num_latches}")
    print(f"iterations:       {result.iterations}")
    print(f"BDD nodes:        {len(mgr)} (peak {stats['peak_live_nodes']})")
    if stats["gc_runs"] or stats["reorder_runs"]:
        print(
            f"kernel:           gc_runs={stats['gc_runs']} "
            f"reclaim_ratio_avg={stats['reclaim_ratio_avg']:.2f} "
            f"reorders={stats['reorder_runs']} swaps={stats['reorder_swaps']}"
        )
    if tracer is not None:
        _export_trace(tracer, args.trace)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.obs.log import configure
    from repro.serve.server import serve

    configure(args.log_level, json_lines=args.log_json)
    return serve(
        args.host,
        args.port,
        cache_dir=args.cache_dir,
        max_entries=args.max_entries,
        verbose=args.verbose,
    )


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.serve.client import ServeClient

    with open(args.blif, encoding="utf-8") as handle:
        blif_text = handle.read()
    body = {
        "blif": blif_text,
        "x_latches": [name for name in args.x_latches.split(",") if name],
        "method": args.method,
        "reorder": args.reorder,
        "gc": args.gc,
        "shards": args.shards,
        "frontier": args.frontier,
        "batch": args.batch,
    }
    if args.product_order != "stacked":
        body["product_order"] = args.product_order
    if args.backend != "python":
        body["backend"] = args.backend
    if args.max_seconds is not None:
        body["max_seconds"] = args.max_seconds
    if args.max_nodes is not None:
        body["max_nodes"] = args.max_nodes
    if args.checkpoint_every:
        body["checkpoint_every"] = args.checkpoint_every
    if args.checkpoint_seconds:
        body["checkpoint_seconds"] = args.checkpoint_seconds
    if args.resident_budget is not None:
        body["resident_budget"] = args.resident_budget
    if args.no_resume:
        body["resume"] = False
    client = ServeClient(args.url)
    job = client.submit(body)
    print(f"{job['id']}: {job['status']} (cache_key {job['cache_key'][:16]}…)")
    if args.no_wait:
        return 0

    def on_event(event: dict) -> None:
        kind = event.get("type")
        if kind == "progress":
            print(
                f"  batch {event['batches']}: subsets={event['subsets']} "
                f"edges={event['edges']} frontier={event['frontier']} "
                f"live_nodes={event['live_nodes']}"
            )
        elif kind == "checkpoint":
            print(f"  checkpoint @ batch {event['batches']} persisted")
        elif kind == "resume":
            print(f"  resumed from checkpoint @ batch {event['batches']}")
        elif kind == "cache_hit":
            print("  served from cache")

    done = client.wait(job["id"], on_event=on_event)
    if done["status"] != "done":
        print(f"{job['id']}: {done['status']}: {done.get('error') or ''}")
        return 1
    result = client.result(job["id"])
    source = "cache" if result["cached"] else "solver"
    print(
        f"{job['id']}: done csf_states={result['csf_states']} "
        f"time={result['seconds']:.3f}s ({source})"
    )
    if args.kiss_out:
        with open(args.kiss_out, "w", encoding="utf-8") as handle:
            handle.write(result["kiss"])
        print(f"  CSF written to {args.kiss_out} (KISS2)")
    return 0


def _cmd_jobs(args: argparse.Namespace) -> int:
    from repro.serve.client import ServeClient

    client = ServeClient(args.url)
    if args.cancel:
        job = client.cancel(args.cancel)
        print(f"{job['id']}: cancel requested (status {job['status']})")
        return 0
    if args.shutdown:
        client.shutdown()
        print("server shutting down")
        return 0
    if args.cache:
        stats = client.cache()
        print(
            f"cache: {stats['entries']} entries, {stats['bytes']} bytes, "
            f"{stats['checkpoints']} checkpoints "
            f"(max_entries={stats['max_entries']})"
        )
        return 0
    if args.metrics:
        print(client.metrics(), end="")
        return 0
    if args.job:
        job = client.job(args.job)
        print(
            f"{job['id']}: {job['status']} cached={job['cached']} "
            f"resumed={job['resumed']} events={job['events']}"
        )
        if job.get("error"):
            print(f"  error: {job['error']}")
        if job.get("result"):
            print(f"  result: {job['result']}")
        if job.get("metrics"):
            parts = ", ".join(
                f"{key}={value}" for key, value in sorted(job["metrics"].items())
            )
            print(f"  metrics: {parts}")
        for event in client.events(args.job)["events"]:
            print(f"  [{event['seq']}] {event}")
        return 0
    listing = client.jobs()
    if not listing:
        print("no jobs")
        return 0
    for job in listing:
        summary = job.get("result") or {}
        print(
            f"{job['id']}: {job['status']} cached={job['cached']} "
            f"csf_states={summary.get('csf_states', '-')}"
        )
    return 0


def _cmd_stg(args: argparse.Namespace) -> int:
    from repro.network.blif import read_blif
    from repro.automata.ops import complete
    from repro.automata.stg import network_to_automaton

    net = read_blif(args.blif)
    aut = network_to_automaton(net, max_states=args.max_states)
    if args.complete:
        aut = complete(aut)
    print(f"model:  {net.name} ({net.stats()})")
    print(f"states: {aut.num_states}  edges: {aut.num_edges()}")
    print(f"deterministic: {aut.is_deterministic()}  complete: {aut.is_complete()}")
    if args.kiss_out:
        from repro.automata.kiss import write_kiss

        with open(args.kiss_out, "w", encoding="utf-8") as handle:
            handle.write(write_kiss(aut))
        print(f"automaton written to {args.kiss_out} (KISS2)")
    if args.dot_out:
        from repro.automata.dot import automaton_to_dot

        with open(args.dot_out, "w", encoding="utf-8") as handle:
            handle.write(automaton_to_dot(aut))
        print(f"automaton written to {args.dot_out} (dot)")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "bench":
        # Forward verbatim: the driver owns its (large) flag surface.
        from repro.bench.driver import main as bench_main

        return bench_main(argv[1:])
    args = _build_parser().parse_args(argv)
    handlers = {
        "solve": _cmd_solve,
        "table1": _cmd_table1,
        "info": _cmd_info,
        "reach": _cmd_reach,
        "serve": _cmd_serve,
        "submit": _cmd_submit,
        "jobs": _cmd_jobs,
        "stg": _cmd_stg,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
