"""Tests for the span tracer and the Chrome trace-event export."""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs import trace as trace_mod
from repro.obs.trace import (
    Tracer,
    current_tracer,
    install_tracer,
    instant,
    span,
    uninstall_tracer,
    validate_trace,
    worker_pids,
)


@pytest.fixture(autouse=True)
def _no_leaked_tracer():
    """Every test starts and ends with tracing disabled."""
    uninstall_tracer()
    yield
    uninstall_tracer()


def spans_by_name(data: dict) -> dict[str, list[dict]]:
    out: dict[str, list[dict]] = {}
    for event in data["traceEvents"]:
        if event.get("ph") == "X":
            out.setdefault(event["name"], []).append(event)
    return out


class TestDisabled:
    def test_span_is_shared_null_object_when_off(self) -> None:
        assert current_tracer() is None
        a = span("anything", key=1)
        b = span("else")
        assert a is b  # the singleton: no allocation per call
        with a as s:
            s.set(result=2)  # ignored, no error
        instant("marker", x=1)  # no-op

    def test_install_uninstall_round_trip(self) -> None:
        tracer = install_tracer()
        assert current_tracer() is tracer
        uninstall_tracer()
        assert current_tracer() is None
        # Events recorded before uninstall survive on the object.
        assert isinstance(tracer, Tracer)


class TestSpans:
    def test_spans_nest_and_validate(self) -> None:
        tracer = install_tracer()
        with span("outer", batch=1) as outer:
            with span("inner"):
                pass
            with span("inner"):
                pass
            outer.set(size=2)
        data = tracer.to_dict()
        assert validate_trace(data) == []
        named = spans_by_name(data)
        assert len(named["inner"]) == 2
        (outer_ev,) = named["outer"]
        assert outer_ev["args"] == {"batch": 1, "size": 2}
        # Children fall inside the parent interval.
        for inner in named["inner"]:
            assert inner["ts"] >= outer_ev["ts"]
            assert inner["ts"] + inner["dur"] <= (
                outer_ev["ts"] + outer_ev["dur"] + 0.01
            )

    def test_exception_is_recorded_and_propagates(self) -> None:
        tracer = install_tracer()
        with pytest.raises(ValueError):
            with span("doomed"):
                raise ValueError("boom")
        (ev,) = spans_by_name(tracer.to_dict())["doomed"]
        assert ev["args"]["error"] == "ValueError"

    def test_instant_event(self) -> None:
        tracer = install_tracer()
        instant("race_resolved", winner="split")
        data = tracer.to_dict()
        assert validate_trace(data) == []
        (ev,) = [e for e in data["traceEvents"] if e.get("ph") == "i"]
        assert ev["s"] == "p"
        assert ev["args"]["winner"] == "split"

    def test_threads_get_separate_tracks(self) -> None:
        tracer = install_tracer()

        def worker() -> None:
            with span("threaded"):
                pass

        t = threading.Thread(target=worker)
        with span("main_side"):
            t.start()
            t.join()
        data = tracer.to_dict()
        assert validate_trace(data) == []
        named = spans_by_name(data)
        assert named["threaded"][0]["tid"] != named["main_side"][0]["tid"]


class TestWorkerRelay:
    def test_worker_meta_lands_on_pid_track(self) -> None:
        tracer = install_tracer()
        t0 = tracer.t0
        tracer.add_worker_event(
            {"op": "expand_batch", "pid": 4242, "t0": t0 + 0.01, "t1": t0 + 0.02}
        )
        data = tracer.to_dict()
        assert validate_trace(data, require_workers=True) == []
        assert worker_pids(data) == {4242}
        (ev,) = spans_by_name(data)["shard:expand_batch"]
        assert ev["pid"] == 4242 and ev["tid"] == 0
        assert ev["args"]["op"] == "expand_batch"

    def test_require_workers_fails_without_tracks(self) -> None:
        tracer = install_tracer()
        with span("solve"):
            pass
        problems = validate_trace(tracer.to_dict(), require_workers=True)
        assert any("shard-worker" in p for p in problems)


class TestValidation:
    def test_rejects_malformed_events(self) -> None:
        bad = {
            "traceEvents": [
                {"ph": "X", "name": "", "ts": 1, "dur": 1, "pid": 1, "tid": 1},
                {"ph": "X", "name": "neg", "ts": -5, "dur": 1, "pid": 1, "tid": 1},
                {"ph": "X", "name": "f", "ts": 0, "dur": 1, "pid": "x", "tid": 1},
                {"ph": "Z", "name": "f", "ts": 0, "dur": 1, "pid": 1, "tid": 1},
                "not-an-object",
            ]
        }
        problems = validate_trace(bad)
        assert len(problems) == 5

    def test_rejects_partial_overlap(self) -> None:
        bad = {
            "traceEvents": [
                {"ph": "X", "name": "a", "ts": 0.0, "dur": 10.0, "pid": 1, "tid": 1},
                {"ph": "X", "name": "b", "ts": 5.0, "dur": 10.0, "pid": 1, "tid": 1},
            ]
        }
        problems = validate_trace(bad)
        assert any("partially overlaps" in p for p in problems)

    def test_accepts_overlap_on_different_tracks(self) -> None:
        ok = {
            "traceEvents": [
                {"ph": "X", "name": "a", "ts": 0.0, "dur": 10.0, "pid": 1, "tid": 1},
                {"ph": "X", "name": "b", "ts": 5.0, "dur": 10.0, "pid": 2, "tid": 0},
            ]
        }
        assert validate_trace(ok) == []

    def test_top_level_shape(self) -> None:
        assert validate_trace([]) != []
        assert validate_trace({"traceEvents": "nope"}) != []


class TestExportAndCli:
    def test_export_is_chrome_loadable_json(self, tmp_path) -> None:
        tracer = install_tracer()
        with span("solve", method="partitioned"):
            with span("frontier_batch", batch=1):
                pass
        out = tmp_path / "trace.json"
        tracer.export(str(out))
        data = json.loads(out.read_text())
        assert data["displayTimeUnit"] == "ms"
        assert data["metadata"]["coordinator_pid"] == tracer.pid
        assert validate_trace(data) == []

    def test_cli_validator_ok_and_fail(self, tmp_path, capsys) -> None:
        tracer = install_tracer()
        with span("solve"):
            pass
        good = tmp_path / "good.json"
        tracer.export(str(good))
        assert trace_mod._main([str(good)]) == 0
        assert "ok:" in capsys.readouterr().out
        # --require-workers fails: no worker tracks in this trace.
        assert trace_mod._main([str(good), "--require-workers"]) == 1
        assert "INVALID" in capsys.readouterr().out

    def test_events_window_for_phase_breakdowns(self) -> None:
        tracer = install_tracer()
        with span("before"):
            pass
        mark = len(tracer)
        with span("after"):
            pass
        names = [e["name"] for e in tracer.events(mark)]
        assert names == ["after"]
