"""Experiment E3: Theorem 1 of the paper (Appendix).

"To determinize a finite automaton A, the following two procedures are
equivalent: 1. Complete(Determinize(A)); 2. Determinize(Complete(A))."

We verify language equality of the two procedures on random automata,
plus the corollary commutations with product that justify deferring all
completions into the subset construction (Corollary 1 is exercised
end-to-end in tests/eqn/test_cross_validation.py).
"""

from __future__ import annotations

import pytest

from repro.automata import (
    complement,
    complete,
    determinize,
    enumerate_language,
    equivalent,
    minimize,
    product,
)
from tests.automata.conftest import random_automaton

WORD_LEN = 3
SEEDS = range(20)


@pytest.mark.parametrize("seed", SEEDS)
def test_theorem1_complete_determinize_commute(seed) -> None:
    aut = random_automaton(seed, n_states=5)
    path1 = complete(determinize(aut))
    path2 = determinize(complete(aut))
    assert enumerate_language(path1, WORD_LEN) == enumerate_language(path2, WORD_LEN)


@pytest.mark.parametrize("seed", SEEDS)
def test_theorem1_via_language_equivalence_check(seed) -> None:
    # Same statement, decided by the symbolic containment checker instead
    # of brute-force enumeration (exercises longer words too).
    aut = random_automaton(seed, n_states=4)
    path1 = complete(determinize(aut))
    path2 = determinize(complete(aut))
    assert equivalent(path1, path2)


@pytest.mark.parametrize("seed", SEEDS)
def test_completion_commutes_with_complement_language(seed) -> None:
    # complement(complete(det(A))) vs complement(det(complete(A))):
    # the "trivial propositions" after Theorem 1.
    aut = random_automaton(seed, n_states=4)
    c1 = complement(complete(determinize(aut)))
    c2 = complement(complete(determinize(complete(aut))))
    assert equivalent(c1, c2)


@pytest.mark.parametrize("seed", range(10))
def test_completion_commutes_with_product_language(seed) -> None:
    # L(complete(A) x complete(B)) == L(A x B): completion only adds
    # non-accepting sink states, which never create accepted words.
    from repro.bdd.reorder import transfer
    from repro.automata.automaton import Automaton

    a = random_automaton(seed, n_states=3)
    b_raw = random_automaton(seed + 50, n_states=3)
    b = Automaton(a.manager, a.variables)
    for sid in range(b_raw.num_states):
        b.add_state(b_raw.state_names[sid], accepting=sid in b_raw.accepting)
    for src, bucket in enumerate(b_raw.edges):
        for dst, label in bucket.items():
            b.add_edge(src, dst, transfer(label, b_raw.manager, a.manager))
    plain = product(a, b)
    completed = product(complete(a), complete(b))
    assert enumerate_language(plain, WORD_LEN) == enumerate_language(
        completed, WORD_LEN
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_determinize_idempotent_up_to_language(seed) -> None:
    aut = random_automaton(seed, n_states=4)
    once = determinize(aut)
    twice = determinize(once)
    assert equivalent(once, twice)
    # And minimization agrees on the canonical size for both.
    assert minimize(complete(once)).num_states == minimize(complete(twice)).num_states
